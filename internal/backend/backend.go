// Package backend runs a config.Scenario at a chosen simulation fidelity
// behind one interface. The fluid backend integrates the flow-level model
// (internal/fluid); the packet backend compiles the same scenario into a
// dumbbell topology with full TCP senders (internal/netsim + internal/tcp
// + internal/core). Both return the same Result shape, so every layer
// above — experiment sweeps, harness replication, the CLI — is fidelity
// agnostic, and cross-fidelity agreement on a shared scenario becomes a
// checkable property instead of a hand-maintained pair of code paths.
//
// Run is a pure function of (scenario, seed): two calls with equal
// arguments return DeepEqual results on any goroutine, which is what lets
// internal/harness replicate backends across a worker pool
// deterministically.
package backend

import (
	"context"

	"mltcp/internal/config"
	"mltcp/internal/sched"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Backend runs one scenario at one fidelity.
type Backend interface {
	// Name identifies the fidelity ("fluid", "packet").
	Name() string
	// Run simulates the scenario to its horizon. seed feeds every noise
	// stream in the run (each job derives a private stream from it), so
	// distinct seeds give independent replicas and equal seeds identical
	// results. The scenario is not mutated. ctx cancellation aborts the
	// run between integration chunks with ctx.Err().
	Run(ctx context.Context, scn *config.Scenario, seed uint64) (*Result, error)
}

// JobResult is one job's outcome, common to both fidelities.
type JobResult struct {
	// Name labels the job; Profile names its model shape.
	Name    string
	Profile string
	// Ideal is the isolated iteration time at the backend's scale (both
	// backends preserve the unscaled value by construction).
	Ideal sim.Time
	// BytesPerIter is the configured per-iteration communication volume
	// at the backend's native scale (multiply by 1/Result.Scale for
	// scenario units).
	BytesPerIter int64
	// DeliveredBytes is the total communication volume actually delivered
	// over the run, at the backend's native scale.
	DeliveredBytes int64
	// CommStarts and CommEnds bracket each communication phase. A final
	// phase still in flight at the horizon has a start without an end.
	CommStarts []sim.Time
	CommEnds   []sim.Time
	// IterTimes[i] is CommStarts[i+1] - CommStarts[i], the training
	// iteration durations.
	IterTimes []sim.Time
	// FCTs[i] is CommEnds[i] - CommStarts[i], the per-iteration flow
	// completion times.
	FCTs []sim.Time
	// CwndTrace samples the congestion window over time (packets).
	// Packet backend only: the fluid abstraction has no window — its
	// analogue, the weight F(bytes_ratio), is a pure function of
	// progress.
	CwndTrace []float64
	// FinalCwnd is the last window sample (0 for the fluid backend).
	FinalCwnd float64
	// Bandwidth is the job's delivered rate in bits/second per trace
	// bucket. Fluid backend with TraceBucket set only.
	Bandwidth []float64
	// SrcRack and DstRack name the job's fabric placement ("rack0"), and
	// PathLinks the directed links its flow crosses, in path order.
	// Topology scenarios only.
	SrcRack   string
	DstRack   string
	PathLinks []string
}

// Iterations returns the number of completed communication phases.
func (j JobResult) Iterations() int { return len(j.CommEnds) }

// SteadyIter averages iteration times after skipping the first `skip`
// (the convergence transient). If fewer than skip+1 iterations exist it
// averages the second half instead, and returns 0 with no iterations.
func (j JobResult) SteadyIter(skip int) sim.Time {
	n := len(j.IterTimes)
	if n == 0 {
		return 0
	}
	if skip >= n {
		skip = n / 2
	}
	var sum sim.Time
	for _, d := range j.IterTimes[skip:] {
		sum += d
	}
	return sum / sim.Time(n-skip)
}

// Slowdown is SteadyIter(skip) / Ideal.
func (j JobResult) Slowdown(skip int) float64 {
	if j.Ideal <= 0 {
		return 0
	}
	return j.SteadyIter(skip).Seconds() / j.Ideal.Seconds()
}

// Result is one backend run's outcome.
type Result struct {
	// Backend is the fidelity that produced the result.
	Backend string
	// Scenario and Policy echo the normalized scenario.
	Scenario string
	Policy   string
	// Capacity is the bottleneck rate at the backend's native scale;
	// Scale is the factor applied to the scenario (1 for fluid).
	Capacity units.Rate
	Scale    float64
	// Duration is the simulated horizon.
	Duration sim.Time
	// Jobs holds per-job outcomes in scenario order.
	Jobs []JobResult
	// InterleavedAt is the first iteration index from which every job's
	// remaining iteration times stay within InterleaveTol of its ideal
	// (-1 if never within the horizon).
	InterleavedAt int
	// OverlapScore is the fraction of communication time spent overlapping
	// with at least one other job over the second half of the horizon:
	// ∫ max(k-1,0) dt / ∫ k dt for k = concurrently communicating jobs.
	// 0 means fully interleaved; (n-1)/n means all n always collide.
	OverlapScore float64
	// Cluster summarizes fabric-wide structure for topology runs (nil for
	// the single-bottleneck model).
	Cluster *ClusterResult
}

// ClusterResult is the fabric-wide view of a topology run: which job
// pairs contend for links, and how much of their communication actually
// collides. MLTCP's promise is local — flows sharing a bottleneck
// interleave — so the shared-pair overlap dropping while disjoint pairs
// stay untouched is the cluster-scale signature the figures plot.
type ClusterResult struct {
	// Topology labels the fabric ("fattree-4"); Racks and Links are its
	// rack and directed-link counts.
	Topology string
	Racks    int
	Links    int
	// SharingPairs and DisjointPairs count job pairs that do and do not
	// cross at least one common fabric link.
	SharingPairs  int
	DisjointPairs int
	// SharedOverlap and DisjointOverlap average the pairwise overlap
	// score (second half of the horizon) over each class.
	SharedOverlap   float64
	DisjointOverlap float64
}

// InterleaveTol is the per-iteration tolerance (relative to ideal) used
// for InterleavedAt, matching the packet-level convergence band used
// throughout the experiments.
const InterleaveTol = 0.08

// interleavedAt returns the first iteration from which every job's
// iteration times stay within tol of its own ideal, -1 if never.
func interleavedAt(jobs []JobResult, tol float64) int {
	maxIter := 0
	for _, j := range jobs {
		if len(j.IterTimes) > maxIter {
			maxIter = len(j.IterTimes)
		}
	}
	for k := 0; k < maxIter; k++ {
		ok := true
		for _, j := range jobs {
			ideal := j.Ideal.Seconds()
			for _, d := range j.IterTimes[min(k, len(j.IterTimes)):] {
				if diff := d.Seconds()/ideal - 1; diff > tol || diff < -tol {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return k
		}
	}
	return -1
}

// overlapScore sweeps the jobs' communication intervals clipped to
// [from, until) and returns ∫ max(k-1,0) dt / ∫ k dt, where k(t) is the
// number of jobs communicating at t. Phases without a recorded end are
// treated as extending to `until`.
func overlapScore(jobs []JobResult, from, until sim.Time) float64 {
	type edge struct {
		at sim.Time
		d  int
	}
	var edges []edge
	for _, j := range jobs {
		for i, s := range j.CommStarts {
			e := until
			if i < len(j.CommEnds) {
				e = j.CommEnds[i]
			}
			if e <= from || s >= until {
				continue
			}
			if s < from {
				s = from
			}
			if e > until {
				e = until
			}
			if e > s {
				edges = append(edges, edge{s, +1}, edge{e, -1})
			}
		}
	}
	if len(edges) == 0 {
		return 0
	}
	// Insertion sort by time, ends before starts at ties (a phase ending
	// exactly when another starts is interleaved, not overlapping).
	for i := 1; i < len(edges); i++ {
		for k := i; k > 0 && (edges[k].at < edges[k-1].at ||
			(edges[k].at == edges[k-1].at && edges[k].d < edges[k-1].d)); k-- {
			edges[k], edges[k-1] = edges[k-1], edges[k]
		}
	}
	var commTime, overlapTime float64
	depth := 0
	prev := edges[0].at
	for _, e := range edges {
		dt := (e.at - prev).Seconds()
		if depth > 0 {
			commTime += float64(depth) * dt
			if depth > 1 {
				overlapTime += float64(depth-1) * dt
			}
		}
		depth += e.d
		prev = e.at
	}
	if commTime == 0 {
		return 0
	}
	return overlapTime / commTime
}

// finishResult fills the derived fields every backend shares.
func finishResult(r *Result) {
	r.InterleavedAt = interleavedAt(r.Jobs, InterleaveTol)
	r.OverlapScore = overlapScore(r.Jobs, r.Duration/2, r.Duration)
	finishCluster(r)
}

// finishCluster fills the pairwise cluster scores from the jobs' path
// links and phase timelines. It runs over the same integer-nanosecond
// data whether the Result came from a live run or ResultFromTrace, so
// trace consumers recompute the scores exactly.
func finishCluster(r *Result) {
	c := r.Cluster
	if c == nil {
		return
	}
	c.SharingPairs, c.DisjointPairs = 0, 0
	c.SharedOverlap, c.DisjointOverlap = 0, 0
	from, until := r.Duration/2, r.Duration
	for i := range r.Jobs {
		onPath := make(map[string]bool, len(r.Jobs[i].PathLinks))
		for _, l := range r.Jobs[i].PathLinks {
			onPath[l] = true
		}
		for k := i + 1; k < len(r.Jobs); k++ {
			shared := false
			for _, l := range r.Jobs[k].PathLinks {
				if onPath[l] {
					shared = true
					break
				}
			}
			ov := overlapScore([]JobResult{r.Jobs[i], r.Jobs[k]}, from, until)
			if shared {
				c.SharingPairs++
				c.SharedOverlap += ov
			} else {
				c.DisjointPairs++
				c.DisjointOverlap += ov
			}
		}
	}
	if c.SharingPairs > 0 {
		c.SharedOverlap /= float64(c.SharingPairs)
	}
	if c.DisjointPairs > 0 {
		c.DisjointOverlap /= float64(c.DisjointPairs)
	}
}

// centralOffsets runs the Cassini-style offline optimizer over the
// scenario's job shapes and returns the interleaving start offsets. The
// shapes use the unscaled capacity: packet scaling preserves periods and
// comm durations, so the same offsets are optimal at either fidelity.
func centralOffsets(specs []workload.Spec, capacity units.Rate, seed uint64) []sim.Time {
	shapes := make([]sched.Shape, len(specs))
	for i, spec := range specs {
		shapes[i] = sched.ShapeOf(spec.Profile, capacity)
	}
	return sched.Optimize(shapes, sched.Options{Seed: seed}).Offsets
}

// jobSeed derives the per-job noise-stream seed from the run seed and the
// spec's configured seed (distinct per spec by construction in
// config.Specs), so replicas are independent and runs reproducible.
func jobSeed(runSeed uint64, spec workload.Spec) uint64 {
	return sim.DeriveSeed(runSeed, spec.Seed)
}
