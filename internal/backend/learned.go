package backend

import (
	"context"
	"fmt"
	"math"
	"sync"

	"mltcp/internal/config"
	"mltcp/internal/learn"
	"mltcp/internal/obs"
	"mltcp/internal/place"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Learned predicts scenario outcomes with the trained model from
// internal/learn instead of simulating them — the m4-style third fidelity
// tier: microseconds of wall time, model-accuracy error. It synthesizes a
// uniform per-job timeline from the predicted steady-state slowdown, so
// the Result shape (phase timelines, FCTs, delivered bytes) matches the
// exact backends; convergence diagnostics (InterleavedAt, OverlapScore,
// cluster overlaps) come from dedicated model heads, since a uniform
// timeline carries no transient to measure. The zero value serves the
// embedded default model.
type Learned struct {
	// Model overrides the embedded default model (nil = default).
	Model *learn.Model

	// layouts caches the slowdown head's per-job evaluation layout by
	// policy: the layout depends only on the job vector's feature names,
	// which Extract varies only with the policy. Safe for the harness's
	// concurrent Run calls.
	layouts sync.Map // policy string → *learn.JobLayout
}

// Name implements Backend.
func (*Learned) Name() string { return NameLearned }

// model resolves the serving model.
func (b *Learned) model() (*learn.Model, error) {
	if b.Model != nil {
		return b.Model, nil
	}
	return learn.DefaultModel()
}

// Run implements Backend. It is a pure function of (scenario, seed): the
// placement compilation and feature extraction reuse the exact backends'
// seeded streams, and model inference is deterministic arithmetic.
func (b *Learned) Run(ctx context.Context, scn *config.Scenario, seed uint64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("backend: learned run aborted: %w", err)
	}
	m, err := b.model()
	if err != nil {
		return nil, err
	}
	slowdownHead := m.Head(learn.HeadSlowdown)
	if slowdownHead == nil {
		return nil, fmt.Errorf("backend: learned model has no %q head", learn.HeadSlowdown)
	}
	s := *scn
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	specs := s.Specs()
	var offsets []sim.Time
	if s.Centralized() {
		offsets = centralOffsets(specs, s.Capacity(), seed)
	}
	pc := place.Compile(&s, specs, seed)
	if offsets != nil {
		for i := range specs {
			specs[i].StartOffset = offsets[i]
		}
	}
	f := learn.Extract(&s, specs, pc)

	span := obs.FromContext(ctx).StartRun(b.Name())
	// The scenario vector feeds every head: hash its names once.
	hv := learn.NewHashedVector(f.Scenario)
	base := make([]float64, learn.Dim)
	hv.AddTo(base)
	predictions := uint64(0)
	horizon := s.Duration()

	res := &Result{
		Backend:  b.Name(),
		Scenario: s.Name,
		Policy:   s.Policy,
		Capacity: s.Capacity(),
		Scale:    1,
		Duration: horizon,
	}
	res.Jobs = make([]JobResult, 0, len(specs))
	var ev *learn.JobEval
	if len(specs) > 0 {
		var layout *learn.JobLayout
		if v, ok := b.layouts.Load(s.Policy); ok {
			layout = v.(*learn.JobLayout)
		} else {
			layout = learn.NewJobLayout(slowdownHead, f.Jobs[0])
			b.layouts.Store(s.Policy, layout)
		}
		ev = layout.EvalHashed(base, hv)
	}
	for i, spec := range specs {
		shat := ev.Predict(f.Jobs[i])
		predictions++
		if shat < 1 {
			shat = 1
		}
		res.Jobs = append(res.Jobs, synthesizeJob(spec, pc.IdealCap(i, s.Capacity()), shat, horizon))
		if pc != nil {
			jr := &res.Jobs[len(res.Jobs)-1]
			jr.SrcRack = fmt.Sprintf("rack%d", pc.Placements[i].SrcRack)
			jr.DstRack = fmt.Sprintf("rack%d", pc.Placements[i].DstRack)
			jr.PathLinks = pc.PathNames[i]
		}
	}

	// Convergence diagnostics from the scenario-level heads. The synthetic
	// timelines are uniform, so recomputing these from the timelines would
	// claim instant convergence; the heads carry what the simulator saw.
	maxIter := 0
	for _, j := range res.Jobs {
		if len(j.IterTimes) > maxIter {
			maxIter = len(j.IterTimes)
		}
	}
	res.InterleavedAt = -1
	if h := m.Head(learn.HeadInterleave); h != nil && maxIter > 0 {
		frac := h.PredictHashed(base, hv)
		predictions++
		if frac < 0.999 {
			k := int(math.Round(frac * float64(maxIter)))
			if k < 0 {
				k = 0
			}
			if k >= maxIter {
				k = maxIter - 1
			}
			res.InterleavedAt = k
		}
	}
	if h := m.Head(learn.HeadOverlap); h != nil {
		res.OverlapScore = clamp01(h.PredictHashed(base, hv))
		predictions++
	}
	if pc != nil {
		res.Cluster = &ClusterResult{
			Topology: pc.Fab.Kind,
			Racks:    pc.Fab.Racks(),
			Links:    len(pc.Fab.Links()),
		}
		countClusterPairs(res, pc.Paths)
		if h := m.Head(learn.HeadSharedOverlap); h != nil && res.Cluster.SharingPairs > 0 {
			res.Cluster.SharedOverlap = clamp01(h.PredictHashed(base, hv))
			predictions++
		}
		if h := m.Head(learn.HeadDisjointLoad); h != nil && res.Cluster.DisjointPairs > 0 {
			res.Cluster.DisjointOverlap = clamp01(h.PredictHashed(base, hv))
			predictions++
		}
	}
	span.Finish(predictions, horizon)

	rec := telemetry.FromContext(ctx)
	if rec.Enabled() {
		mjobs := make([]telemetry.ManifestJob, len(specs))
		for i, spec := range specs {
			mjobs[i] = telemetry.ManifestJob{
				Flow:         i + 1,
				Name:         spec.Label(),
				Profile:      spec.Profile.Name,
				IdealNS:      int64(spec.Profile.IdealIterTime(pc.IdealCap(i, s.Capacity()))),
				BytesPerIter: int64(spec.Profile.CommBytes),
			}
			if pc != nil {
				mjobs[i].SrcRack = fmt.Sprintf("rack%d", pc.Placements[i].SrcRack)
				mjobs[i].DstRack = fmt.Sprintf("rack%d", pc.Placements[i].DstRack)
				mjobs[i].Links = pc.PathNames[i]
			}
		}
		man := newManifest(&s, b.Name(), seed, s.Capacity(), 1, mjobs)
		man.Predicted = true
		if pc != nil {
			man.Topology = pc.Fab.Kind
			man.Racks = pc.Fab.Racks()
			man.FabricLinks = len(pc.Fab.Links())
		}
		rec.SetManifest(man)
	}
	return res, nil
}

// synthesizeJob renders one job's predicted timeline: iterations of
// uniform duration shat×ideal (never faster than ideal), communication
// phases of iter−compute, truncated at the horizon and the job's
// iteration budget, with a trailing in-flight phase when the horizon cuts
// an iteration mid-communication.
func synthesizeJob(spec workload.Spec, capI units.Rate, shat float64, horizon sim.Time) JobResult {
	ideal := spec.Profile.IdealIterTime(capI)
	iter := ideal.Scale(shat)
	if iter < ideal {
		iter = ideal
	}
	compute := spec.Profile.ComputeTime
	comm := iter - compute
	bytes := int64(spec.Profile.CommBytes)
	jr := JobResult{
		Name:         spec.Label(),
		Profile:      spec.Profile.Name,
		Ideal:        ideal,
		BytesPerIter: bytes,
	}
	budget := spec.MaxIterations
	// The timeline is uniform, so phase counts follow from arithmetic:
	// phase k communicates over [first+k·iter, first+k·iter+comm]. nFull
	// phases end by the horizon; one more may start and be cut mid-flight.
	first := spec.StartOffset + compute
	started, nFull := 0, 0
	if first < horizon && iter > 0 {
		started = int((horizon-first-1)/iter) + 1 // starts strictly before horizon
		if budget > 0 && started > budget {
			started = budget
		}
		if fit := horizon - first - comm; fit >= 0 {
			nFull = int(fit/iter) + 1
			if nFull > started {
				nFull = started
			}
		}
	}
	// All four slices carve one exactly-sized allocation; the fills are
	// tight constant-stride loops with no per-iteration branching.
	size := 0
	if started > 0 {
		size = 4*started - 1
	}
	buf := make([]sim.Time, size)
	starts := buf[:started]
	ends := buf[started : started+nFull]
	fcts := buf[2*started : 2*started+nFull]
	for k := range starts {
		starts[k] = first + sim.Time(k)*iter
	}
	for k := range ends {
		ends[k] = starts[k] + comm
	}
	for k := range fcts {
		fcts[k] = comm
	}
	jr.CommStarts = starts
	jr.CommEnds = ends
	jr.FCTs = fcts
	jr.DeliveredBytes = int64(nFull) * bytes
	if started > nFull && comm > 0 {
		// In-flight at the horizon: a start without an end, like the exact
		// backends record for unfinished phases, delivering a partial phase.
		jr.DeliveredBytes += int64(float64(bytes) * (horizon - starts[started-1]).Seconds() / comm.Seconds())
	}
	// IterTimes follow the exact backends' convention: start-to-start
	// boundaries, one fewer than recorded starts. A one-iteration job has
	// none — its steady slowdown reads 0 there too.
	if started > 1 {
		it := buf[3*started : 3*started+started-1]
		for k := range it {
			it[k] = iter
		}
		jr.IterTimes = it
	}
	return jr
}

// countClusterPairs fills SharingPairs/DisjointPairs from the jobs'
// compiled link-ID paths — exact structure, no prediction needed. Paths
// become per-job bitsets so the O(n²) pair sweep is a few word ANDs.
func countClusterPairs(r *Result, paths [][]int) {
	c := r.Cluster
	n := len(paths)
	maxLink := 0
	for _, path := range paths {
		for _, l := range path {
			if l > maxLink {
				maxLink = l
			}
		}
	}
	words := maxLink/64 + 1
	buf := make([]uint64, words*n)
	bits := make([][]uint64, n)
	for i, path := range paths {
		b := buf[i*words : (i+1)*words]
		for _, l := range path {
			b[l/64] |= 1 << (l % 64)
		}
		bits[i] = b
	}
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			shared := false
			for w := 0; w < words; w++ {
				if bits[i][w]&bits[k][w] != 0 {
					shared = true
					break
				}
			}
			if shared {
				c.SharingPairs++
			} else {
				c.DisjointPairs++
			}
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
