package backend

import (
	"context"
	"fmt"

	"mltcp/internal/config"
	"mltcp/internal/fluid"
	"mltcp/internal/obs"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// Fluid runs scenarios on the flow-level simulator: milliseconds of wall
// time, exact phase boundaries, the weighted-share abstraction §4's
// analysis is stated in. The zero value is ready to use.
type Fluid struct {
	// Step overrides the fluid integration step (0 = fluid default 1ms).
	Step sim.Time
	// TraceBucket, when positive, records per-job bandwidth into
	// JobResult.Bandwidth buckets of this width.
	TraceBucket sim.Time
}

// Name implements Backend.
func (*Fluid) Name() string { return NameFluid }

// Run implements Backend.
func (b *Fluid) Run(ctx context.Context, scn *config.Scenario, seed uint64) (*Result, error) {
	s := *scn
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	specs := s.Specs()
	var offsets []sim.Time
	if s.Centralized() {
		offsets = centralOffsets(specs, s.Capacity(), seed)
	}

	cl := compileCluster(&s, specs, seed)
	agg := s.Agg()
	jobs := make([]*fluid.Job, len(specs))
	for i, spec := range specs {
		spec.Seed = jobSeed(seed, spec)
		if offsets != nil {
			spec.StartOffset = offsets[i]
		}
		jobs[i] = &fluid.Job{Spec: spec, Agg: agg, MaxIterations: spec.MaxIterations}
		if cl != nil {
			jobs[i].Path = cl.Paths[i]
		}
	}

	rec := telemetry.FromContext(ctx)
	traceBucket := b.TraceBucket
	if traceBucket == 0 && rec.Enabled() {
		traceBucket = telemetry.DefaultSampleEvery
	}
	if rec.Enabled() {
		mjobs := make([]telemetry.ManifestJob, len(specs))
		for i, spec := range specs {
			mjobs[i] = telemetry.ManifestJob{
				Flow:         i + 1,
				Name:         spec.Label(),
				Profile:      spec.Profile.Name,
				IdealNS:      int64(spec.Profile.IdealIterTime(cl.idealCap(i, s.Capacity()))),
				BytesPerIter: int64(spec.Profile.CommBytes),
			}
			if cl != nil {
				mjobs[i].SrcRack = fmt.Sprintf("rack%d", cl.Placements[i].SrcRack)
				mjobs[i].DstRack = fmt.Sprintf("rack%d", cl.Placements[i].DstRack)
				mjobs[i].Links = cl.PathNames[i]
			}
		}
		m := newManifest(&s, b.Name(), seed, s.Capacity(), 1, mjobs)
		if cl != nil {
			m.Topology = cl.Fab.Kind
			m.Racks = cl.Fab.Racks()
			m.FabricLinks = len(cl.Fab.Links())
		}
		rec.SetManifest(m)
	}

	fcfg := fluid.Config{
		Capacity:    s.Capacity(),
		Policy:      s.FluidPolicy(),
		Step:        b.Step,
		TraceBucket: traceBucket,
		Telemetry:   rec,
	}
	if cl != nil {
		fcfg.Network = cl.nw
	}
	fsim := fluid.New(fcfg, jobs)

	// Integrate in chunks so a cancelled context (harness point timeout,
	// ^C) aborts a long horizon promptly. The obs span is out-of-band:
	// heartbeats sample the heap, never the solver (the fluid backend has
	// no event heap, hence depth 0).
	span := obs.FromContext(ctx).StartRun(b.Name())
	horizon := s.Duration()
	const chunks = 16
	for c := sim.Time(1); c <= chunks; c++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("backend: fluid run aborted: %w", err)
		}
		fsim.Run(horizon * c / chunks)
		span.Heartbeat(0)
	}
	span.Finish(fsim.Steps(), horizon)
	fsim.EmitTrace(rec)

	res := &Result{
		Backend:  b.Name(),
		Scenario: s.Name,
		Policy:   s.Policy,
		Capacity: s.Capacity(),
		Scale:    1,
		Duration: horizon,
	}
	if cl != nil {
		res.Cluster = &ClusterResult{
			Topology: cl.Fab.Kind,
			Racks:    cl.Fab.Racks(),
			Links:    len(cl.Fab.Links()),
		}
	}
	for i, j := range jobs {
		bytes := int64(j.Spec.Profile.CommBytes)
		delivered := int64(len(j.CommEnds)) * bytes
		if j.Communicating() {
			delivered += int64(j.Attained())
		}
		jr := JobResult{
			Name:           j.Spec.Label(),
			Profile:        j.Spec.Profile.Name,
			Ideal:          j.Spec.Profile.IdealIterTime(cl.idealCap(i, s.Capacity())),
			BytesPerIter:   bytes,
			DeliveredBytes: delivered,
			CommStarts:     j.CommStarts,
			CommEnds:       j.CommEnds,
			IterTimes:      j.IterDurations,
		}
		if cl != nil {
			jr.SrcRack = fmt.Sprintf("rack%d", cl.Placements[i].SrcRack)
			jr.DstRack = fmt.Sprintf("rack%d", cl.Placements[i].DstRack)
			jr.PathLinks = cl.PathNames[i]
		}
		for i := range j.CommEnds {
			jr.FCTs = append(jr.FCTs, j.CommEnds[i]-j.CommStarts[i])
		}
		if b.TraceBucket > 0 {
			rates := fsim.Trace(j)
			jr.Bandwidth = make([]float64, len(rates))
			for k, r := range rates {
				jr.Bandwidth[k] = float64(r)
			}
		}
		res.Jobs = append(res.Jobs, jr)
	}
	finishResult(res)
	return res, nil
}
