package backend

import (
	"mltcp/internal/config"
	"mltcp/internal/fluid"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// cluster is a topology scenario compiled for the fluid backend: the
// fabric graph, its fluid.Network rendering, and one placed ECMP path per
// expanded job spec.
type cluster struct {
	fab        *netsim.Fabric
	nw         *fluid.Network
	placements []config.Placement
	// paths[i] is spec i's directed link IDs; pathNames the corresponding
	// link names; pathCaps the narrowest capacity along the path.
	paths     [][]int
	pathNames [][]string
	pathCaps  []units.Rate
}

// idealCap returns the capacity job i's isolated iteration time is
// computed against: the narrowest link on its path, or the scenario
// bottleneck without a topology. Nil-safe so the dumbbell code path needs
// no branches.
func (c *cluster) idealCap(i int, fallback units.Rate) units.Rate {
	if c == nil {
		return fallback
	}
	return c.pathCaps[i]
}

// compileCluster places the expanded specs onto the scenario topology.
// Host slots within each rack are assigned round-robin in spec order, and
// each flow's ECMP choice derives from its run-scoped job seed, so the
// whole compilation is a pure function of (scenario, seed) — the harness
// determinism contract extends to fabric placement. Returns nil for
// non-topology scenarios.
func compileCluster(s *config.Scenario, specs []workload.Spec, seed uint64) *cluster {
	if s.Topology == nil {
		return nil
	}
	fab := s.Topology.Build(s.Capacity())
	links := fab.Links()
	caps := make([]units.Rate, len(links))
	names := make([]string, len(links))
	for l, lk := range links {
		caps[l], names[l] = lk.Capacity, lk.Name
	}
	c := &cluster{
		fab:        fab,
		nw:         fluid.NewNetwork(caps, names),
		placements: s.Placements(),
		paths:      make([][]int, len(specs)),
		pathNames:  make([][]string, len(specs)),
		pathCaps:   make([]units.Rate, len(specs)),
	}
	srcSlot := make([]int, fab.Racks())
	dstSlot := make([]int, fab.Racks())
	for i, spec := range specs {
		p := c.placements[i]
		srcHosts := fab.RackHosts(p.SrcRack)
		dstHosts := fab.RackHosts(p.DstRack)
		src := srcHosts[srcSlot[p.SrcRack]%len(srcHosts)]
		srcSlot[p.SrcRack]++
		dst := dstHosts[dstSlot[p.DstRack]%len(dstHosts)]
		dstSlot[p.DstRack]++
		if dst == src {
			// Same-rack placement: config validation guarantees at least
			// two hosts per rack, so the next slot is a different host.
			dst = dstHosts[dstSlot[p.DstRack]%len(dstHosts)]
			dstSlot[p.DstRack]++
		}
		choice := sim.DeriveSeed(jobSeed(seed, spec), 1)
		c.paths[i] = fab.Path(src, dst, choice)
		pn := make([]string, len(c.paths[i]))
		narrow := caps[c.paths[i][0]]
		for k, l := range c.paths[i] {
			pn[k] = names[l]
			if caps[l] < narrow {
				narrow = caps[l]
			}
		}
		c.pathNames[i] = pn
		c.pathCaps[i] = narrow
	}
	return c
}
