package backend

import (
	"mltcp/internal/config"
	"mltcp/internal/fluid"
	"mltcp/internal/place"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// cluster is a topology scenario compiled for a backend: the shared
// placement compilation (internal/place) plus the fluid.Network rendering
// the flow-level allocator runs over.
type cluster struct {
	*place.Cluster
	nw *fluid.Network
}

// idealCap returns the capacity job i's isolated iteration time is
// computed against (nil-safe, like place.Cluster.IdealCap).
func (c *cluster) idealCap(i int, fallback units.Rate) units.Rate {
	if c == nil {
		return fallback
	}
	return c.Cluster.IdealCap(i, fallback)
}

// compileCluster places the expanded specs onto the scenario topology via
// place.Compile and renders the fabric for the fluid allocator. Returns
// nil for non-topology scenarios.
func compileCluster(s *config.Scenario, specs []workload.Spec, seed uint64) *cluster {
	pc := place.Compile(s, specs, seed)
	if pc == nil {
		return nil
	}
	return &cluster{Cluster: pc, nw: fluid.NewNetwork(pc.LinkCaps, pc.LinkNames)}
}

// placed returns the shared placement compilation (nil for non-topology
// scenarios), for consumers that need paths but not the fluid network.
func (c *cluster) placed() *place.Cluster {
	if c == nil {
		return nil
	}
	return c.Cluster
}
