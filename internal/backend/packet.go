package backend

import (
	"context"
	"fmt"
	"strings"

	"mltcp/internal/config"
	"mltcp/internal/core"
	"mltcp/internal/netsim"
	"mltcp/internal/obs"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
)

// Packet runs scenarios on the packet-level stack: a dumbbell topology
// sized from the scenario, one TCP flow per job driven through the DNN
// write/compute loop, with real loss, RTO, ACK clocking and (for DCTCP /
// D2TCP) ECN marking. The scenario is rendered at its PacketScale — the
// bottleneck runs at Capacity×scale and byte volumes shrink likewise, so
// every iteration time matches the fluid rendering while packet counts
// stay tractable. The zero value is ready to use.
type Packet struct {
	// Scale overrides the scenario's packet_scale when positive.
	Scale float64
	// CwndInterval is the congestion-window sampling interval for
	// JobResult.CwndTrace (default 250ms; negative disables sampling).
	CwndInterval sim.Time
}

// Name implements Backend.
func (*Packet) Name() string { return NamePacket }

// Packet-level topology constants, matching the paper's 1/100-scale
// testbed rendering used throughout internal/experiments.
const (
	hostRateFactor  = 10 // edge links at 10× bottleneck: contention only at the bottleneck
	hostDelay       = 10 * sim.Microsecond
	bottleneckDelay = 30 * sim.Microsecond
	ecnThreshold    = 20 // marking threshold in MTU-sized packets
)

// minTrackerGap floors Algorithm 1's COMP_TIME ack-gap threshold so jobs
// with tiny compute phases still get a positive boundary detector.
const minTrackerGap = 50 * sim.Millisecond

// pktJob drives one sender through the compute/communicate loop and
// records phase boundaries.
type pktJob struct {
	sender   *tcp.Sender
	bytes    int64
	compute  sim.Time
	noise    sim.Time
	rng      *sim.RNG
	trace    *tcp.CwndTrace
	rec      *telemetry.Recorder
	flow     int
	maxIters int

	starts, ends []sim.Time
}

func (p *pktJob) start(eng *sim.Engine, offset sim.Time) {
	p.sender.Drained(func(now sim.Time) {
		p.ends = append(p.ends, now)
		p.rec.IterEnd(now, p.flow, len(p.ends)-1, now-p.starts[len(p.ends)-1])
		if p.maxIters > 0 && len(p.ends) >= p.maxIters {
			return // the job departs after its configured iteration budget
		}
		compute := p.compute
		if p.noise > 0 {
			compute = p.rng.NormDuration(compute, p.noise, 0)
		}
		eng.After(compute, func(e *sim.Engine) { p.begin(e) })
	})
	eng.At(offset, func(e *sim.Engine) { p.begin(e) })
}

func (p *pktJob) begin(eng *sim.Engine) {
	p.starts = append(p.starts, eng.Now())
	p.rec.IterStart(eng.Now(), p.flow, len(p.starts)-1)
	p.sender.Write(p.bytes)
}

// Run implements Backend.
func (b *Packet) Run(ctx context.Context, scn *config.Scenario, seed uint64) (*Result, error) {
	s := *scn
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	base, ml, ok := s.CC()
	if !ok && !s.Centralized() {
		return nil, fmt.Errorf("backend: packet level does not implement policy %q; supported: %s, and centralized (%s are fluid-only)",
			s.Policy, strings.Join(config.CCPolicyNames(), ", "),
			strings.Join(config.FluidOnlyPolicyNames(), ", "))
	}
	if s.Topology != nil {
		return nil, fmt.Errorf("backend: packet level renders only the dumbbell; run topology %q on the %s backend",
			s.Topology.Label(), NameFluid)
	}
	if s.Centralized() {
		base, ml = "reno", false // the optimizer schedules; transport is plain TCP
	}

	scale := s.Scale()
	if b.Scale > 0 {
		scale = b.Scale
	}
	specs := s.Specs()
	var offsets []sim.Time
	if s.Centralized() {
		offsets = centralOffsets(specs, s.Capacity(), seed)
	}

	bottleneck := units.Rate(float64(s.Capacity()) * scale)
	eng := sim.New()
	cfg := netsim.DumbbellConfig{
		HostPairs:       len(specs),
		HostRate:        bottleneck * hostRateFactor,
		BottleneckRate:  bottleneck,
		HostDelay:       hostDelay,
		BottleneckDelay: bottleneckDelay,
	}
	ecn := base == "dctcp" || base == "d2tcp"
	if ecn {
		cfg.BottleneckQueue = func() netsim.Queue {
			return netsim.NewECNQueue(
				netsim.NewDropTail(netsim.DefaultQueuePackets*netsim.DefaultMTU),
				ecnThreshold*netsim.DefaultMTU)
		}
	}
	net := netsim.NewDumbbell(eng, cfg)

	cwndEvery := b.CwndInterval
	if cwndEvery == 0 {
		cwndEvery = 250 * sim.Millisecond
	}

	horizon := s.Duration()
	rec := telemetry.FromContext(ctx)
	var bwMon *netsim.BandwidthMonitor
	if rec.Enabled() {
		net.Forward.SetTelemetry(rec)
		netsim.NewQueueSampler(eng, net.Forward, telemetry.DefaultSampleEvery, 0, horizon, rec)
		bwMon = netsim.NewBandwidthMonitor(net.Forward, telemetry.DefaultSampleEvery)
	}

	jobs := make([]*pktJob, len(specs))
	for i, spec := range specs {
		bytes := int64(float64(spec.Profile.CommBytes) * scale)
		if bytes < 1 {
			return nil, fmt.Errorf("backend: job %s: comm volume %v at packet scale %v rounds to zero bytes",
				spec.Label(), spec.Profile.CommBytes, scale)
		}
		cc, err := buildCC(base, ml, s.Agg(), bytes, spec.Profile.ComputeTime)
		if err != nil {
			return nil, err
		}
		if m, ok := cc.(*core.MLTCP); ok {
			m.Instrument(rec, i+1)
		}
		f := tcp.NewFlow(eng, netsim.FlowID(i+1), net.Left[i], net.Right[i],
			cc, tcp.Config{ECN: ecn, Trace: rec})
		jobs[i] = &pktJob{
			sender:   f.Sender,
			bytes:    bytes,
			compute:  spec.Profile.ComputeTime,
			noise:    spec.NoiseStd,
			rng:      sim.NewRNG(jobSeed(seed, spec)),
			rec:      rec,
			flow:     i + 1,
			maxIters: spec.MaxIterations,
		}
		if cwndEvery > 0 {
			jobs[i].trace = tcp.SampleCwnd(f.Sender, cwndEvery)
		}
		off := spec.StartOffset
		if offsets != nil {
			off = offsets[i]
		}
		jobs[i].start(eng, off)
	}

	if rec.Enabled() {
		mjobs := make([]telemetry.ManifestJob, len(specs))
		for i, spec := range specs {
			mjobs[i] = telemetry.ManifestJob{
				Flow:         i + 1,
				Name:         spec.Label(),
				Profile:      spec.Profile.Name,
				IdealNS:      int64(spec.Profile.ComputeTime + bottleneck.TransmissionTime(jobs[i].bytes)),
				BytesPerIter: jobs[i].bytes,
			}
		}
		rec.SetManifest(newManifest(&s, b.Name(), seed, bottleneck, scale, mjobs))
	}

	// Self-metrics are out-of-band: the span reads the engine and the
	// topology but never feeds back, so traces and Results are identical
	// with or without a collector (pinned by obs_test.go).
	span := obs.FromContext(ctx).StartRun(b.Name())
	const chunks = 8
	for c := sim.Time(1); c <= chunks; c++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("backend: packet run aborted: %w", err)
		}
		eng.RunUntil(horizon * c / chunks)
		span.Heartbeat(eng.Pending())
	}
	if bwMon != nil {
		bwMon.EmitTo(rec)
	}
	lst := net.AggregateStats()
	span.AddLinkTotals(lst.PacketsSent, lst.PacketsDropped, lst.BytesSent)
	span.Finish(eng.Fired(), horizon)

	res := &Result{
		Backend:  b.Name(),
		Scenario: s.Name,
		Policy:   s.Policy,
		Capacity: bottleneck,
		Scale:    scale,
		Duration: horizon,
	}
	for i, j := range jobs {
		spec := specs[i]
		jr := JobResult{
			Name:    spec.Label(),
			Profile: spec.Profile.Name,
			// Packet scaling preserves the unscaled ideal: bytes×scale
			// over capacity×scale plus the unscaled compute phase.
			Ideal:          spec.Profile.ComputeTime + bottleneck.TransmissionTime(j.bytes),
			BytesPerIter:   j.bytes,
			DeliveredBytes: j.sender.TotalBytesAcked(),
			CommStarts:     j.starts,
			CommEnds:       j.ends,
		}
		for k := 1; k < len(j.starts); k++ {
			jr.IterTimes = append(jr.IterTimes, j.starts[k]-j.starts[k-1])
		}
		for k := range j.ends {
			jr.FCTs = append(jr.FCTs, j.ends[k]-j.starts[k])
		}
		if j.trace != nil {
			jr.CwndTrace = j.trace.Values()
			if n := len(jr.CwndTrace); n > 0 {
				jr.FinalCwnd = jr.CwndTrace[n-1]
			}
		}
		res.Jobs = append(res.Jobs, jr)
	}
	finishResult(res)
	return res, nil
}

// buildCC constructs the per-flow congestion control (MLTCP state is
// per-flow and must never be shared between jobs).
func buildCC(base string, ml bool, agg *core.AggFunc, totalBytes int64, compute sim.Time) (tcp.CongestionControl, error) {
	var cc tcp.CongestionControl
	switch base {
	case "reno":
		cc = tcp.NewReno()
	case "cubic":
		cc = tcp.NewCubic()
	case "dctcp":
		cc = tcp.NewDCTCP()
	case "d2tcp":
		cc = tcp.NewD2TCP()
	case "swift":
		cc = tcp.NewSwift()
	default:
		return nil, fmt.Errorf("backend: unknown congestion control %q", base)
	}
	if !ml {
		return cc, nil
	}
	if agg == nil {
		return nil, fmt.Errorf("backend: mltcp policy without an aggressiveness function")
	}
	gap := compute / 4
	if gap < minTrackerGap {
		gap = minTrackerGap
	}
	return core.Wrap(cc, *agg, core.NewTracker(totalBytes, gap)), nil
}

// Compile-time interface checks.
var (
	_ Backend = (*Fluid)(nil)
	_ Backend = (*Packet)(nil)
)
