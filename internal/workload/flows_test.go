package workload

import (
	"testing"
	"testing/quick"

	"mltcp/internal/sim"
)

func TestWebSearchSampleRange(t *testing.T) {
	d := WebSearch()
	rng := sim.NewRNG(1)
	var min, max int64 = 1 << 62, 0
	for i := 0; i < 50000; i++ {
		s := d.Sample(rng)
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		if s < 1 || s > 30_000_000 {
			t.Fatalf("sample %d outside distribution support", s)
		}
	}
	if min > 10_000 {
		t.Errorf("never sampled a small flow: min %d", min)
	}
	if max < 10_000_000 {
		t.Errorf("never sampled the heavy tail: max %d", max)
	}
}

func TestWebSearchShortFlowMass(t *testing.T) {
	// Over half the flows should be under 100 KB (the short-query mass).
	d := WebSearch()
	rng := sim.NewRNG(2)
	short := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.Sample(rng) < 100_000 {
			short++
		}
	}
	frac := float64(short) / n
	if frac < 0.5 || frac > 0.75 {
		t.Errorf("short-flow fraction = %.2f, want ~0.55-0.65", frac)
	}
}

func TestDataMiningHeavierTail(t *testing.T) {
	// Data mining has more tiny flows AND a heavier tail than websearch.
	rng1, rng2 := sim.NewRNG(3), sim.NewRNG(3)
	dm, ws := DataMining(), WebSearch()
	tiny := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if dm.Sample(rng1) < 1000 {
			tiny++
		}
		_ = ws.Sample(rng2)
	}
	if frac := float64(tiny) / n; frac < 0.4 {
		t.Errorf("data mining tiny-flow fraction = %.2f, want ~0.5", frac)
	}
}

func TestSizeDistMean(t *testing.T) {
	d := WebSearch()
	analytic := d.Mean()
	rng := sim.NewRNG(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	empirical := sum / n
	ratio := empirical / analytic
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("empirical mean %.0f vs analytic %.0f (ratio %.2f)", empirical, analytic, ratio)
	}
}

func TestSizeDistValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatched": func() { NewSizeDist("x", []float64{1, 2}, []float64{1}) },
		"descending": func() { NewSizeDist("x", []float64{2, 1}, []float64{0.5, 1}) },
		"not-to-one": func() { NewSizeDist("x", []float64{1, 2}, []float64{0.5, 0.9}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPoissonArrivalsRate(t *testing.T) {
	rng := sim.NewRNG(5)
	p := NewPoissonArrivals(100, rng) // 100 flows/sec
	var total sim.Time
	const n = 50000
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		total += g
	}
	mean := total.Seconds() / n
	if mean < 0.009 || mean > 0.011 {
		t.Errorf("mean gap = %.4fs, want ~0.01s", mean)
	}
}

// Property: samples are always within the distribution's support.
func TestSampleSupportProperty(t *testing.T) {
	d := DataMining()
	prop := func(seed uint32) bool {
		rng := sim.NewRNG(uint64(seed))
		for i := 0; i < 100; i++ {
			s := d.Sample(rng)
			if s < 1 || s > 100_000_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
