// Package workload models distributed DNN training and fine-tuning jobs as
// the paper does (§2, §4): a job is a periodic loop whose iteration
// alternates a compute phase of fixed duration with a communication phase
// that moves a fixed byte volume, and — unlike classical periodic traffic —
// the next iteration starts only when the previous one completes.
package workload

import (
	"fmt"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// Profile describes a model's per-iteration resource shape.
type Profile struct {
	// Name labels the model ("gpt3", "gpt2", ...).
	Name string
	// ComputeTime is the compute phase duration per iteration.
	ComputeTime sim.Time
	// CommBytes is the communication volume per iteration (the
	// all-reduce of gradients for the job's parallelization strategy).
	CommBytes units.ByteCount
}

// IdealIterTime returns the iteration time when the job runs alone on a
// link of the given capacity: T = compute + bytes/capacity (Figure 5a).
func (p Profile) IdealIterTime(c units.Rate) sim.Time {
	return p.ComputeTime + c.TransmissionTime(int64(p.CommBytes))
}

// CommFraction returns a = (comm time at full rate) / T, the fraction of
// the iteration spent communicating in isolation (§4's a).
func (p Profile) CommFraction(c units.Rate) float64 {
	comm := c.TransmissionTime(int64(p.CommBytes))
	return comm.Seconds() / p.IdealIterTime(c).Seconds()
}

func (p Profile) String() string {
	return fmt.Sprintf("%s{compute %v, comm %v}", p.Name, p.ComputeTime, p.CommBytes)
}

// Calibrated profiles. GPT3 and GPT2 are tuned so that on the paper's
// 50 Gbps bottleneck the ideal iteration times match §2's testbed numbers
// (GPT-3-like 1.2 s, GPT-2-like 1.8 s), a fully interleaved schedule of
// {GPT3, 3×GPT2} exists (offsets 0/0.4/1.0/1.6 s give zero overlap over the
// 3.6 s hyperperiod), and SRPT head-of-line-blocks the GPT-3 job by exactly
// the paper's 1.5× (its comm waits for three 0.2 s GPT-2 phases every
// iteration: 1.2 s + 3×0.2 s = 1.8 s). The remaining profiles provide
// additional plausible shapes for extended scenarios; their absolute
// numbers are not calibrated against the paper.
var (
	// GPT3 has a 0.8s compute phase and 2.5GB per iteration: 0.4s of
	// communication at 50 Gbps, so T = 1.2s and a = 1/3.
	GPT3 = Profile{Name: "gpt3", ComputeTime: 800 * sim.Millisecond, CommBytes: 2500 * units.MB}
	// GPT2 has a 1.6s compute phase and 1.25GB per iteration: 0.2s of
	// communication at 50 Gbps, so T = 1.8s and a = 1/9.
	GPT2 = Profile{Name: "gpt2", ComputeTime: 1600 * sim.Millisecond, CommBytes: 1250 * units.MB}
	// BERT is a lighter fine-tuning job.
	BERT = Profile{Name: "bert", ComputeTime: 400 * sim.Millisecond, CommBytes: 1250 * units.MB}
	// ResNet50 is compute-heavy with a small gradient exchange.
	ResNet50 = Profile{Name: "resnet50", ComputeTime: 250 * sim.Millisecond, CommBytes: 312 * units.MB}
	// VGG16 is communication-heavy relative to its compute.
	VGG16 = Profile{Name: "vgg16", ComputeTime: 200 * sim.Millisecond, CommBytes: 1656 * units.MB}
	// DLRM exchanges large embedding gradients.
	DLRM = Profile{Name: "dlrm", ComputeTime: 300 * sim.Millisecond, CommBytes: 2500 * units.MB}
)

// Profiles returns all built-in profiles keyed by name.
func Profiles() map[string]Profile {
	out := map[string]Profile{}
	for _, p := range []Profile{GPT3, GPT2, BERT, ResNet50, VGG16, DLRM} {
		out[p.Name] = p
	}
	return out
}

// ProfileByName resolves one built-in profile without building the map —
// the serving hot path looks profiles up on every Run.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case GPT3.Name:
		return GPT3, true
	case GPT2.Name:
		return GPT2, true
	case BERT.Name:
		return BERT, true
	case ResNet50.Name:
		return ResNet50, true
	case VGG16.Name:
		return VGG16, true
	case DLRM.Name:
		return DLRM, true
	}
	return Profile{}, false
}

// Names returns the built-in profile names in declaration order (for
// error messages and usage strings).
func Names() []string {
	return []string{GPT3.Name, GPT2.Name, BERT.Name, ResNet50.Name, VGG16.Name, DLRM.Name}
}

// Scale returns a copy of p with both compute time and bytes multiplied by
// k, preserving a and T's ratio structure at a different absolute scale.
func (p Profile) Scale(k float64) Profile {
	return Profile{
		Name:        fmt.Sprintf("%s×%.3g", p.Name, k),
		ComputeTime: p.ComputeTime.Scale(k),
		CommBytes:   units.ByteCount(float64(p.CommBytes) * k),
	}
}

// Spec instantiates a profile as a concrete job in an experiment.
type Spec struct {
	// Name labels the job ("J1", ...). Empty uses the profile name.
	Name string
	// Profile is the job's model shape.
	Profile Profile
	// StartOffset delays the job's first communication phase.
	StartOffset sim.Time
	// NoiseStd is the standard deviation of zero-mean Gaussian noise
	// added to each iteration's compute time (§4's perturbation model).
	NoiseStd sim.Time
	// Seed drives the job's private noise stream.
	Seed uint64
	// MaxIterations stops the job after that many iterations (0 = run for
	// the whole horizon). Cluster trace scenarios use it to model job
	// departure.
	MaxIterations int
}

// Label returns the job's display name.
func (s Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Profile.Name
}

// DemandTrace samples the job's isolated traffic pattern (Figure 1): full
// line rate during each communication phase, zero during compute, starting
// at the spec's offset. The result has one sample per bucket up to `until`.
func DemandTrace(spec Spec, capacity units.Rate, until, bucket sim.Time) []units.Rate {
	if bucket <= 0 {
		panic("workload: bucket must be positive")
	}
	n := int(until / bucket)
	out := make([]units.Rate, n)
	commDur := capacity.TransmissionTime(int64(spec.Profile.CommBytes))
	period := spec.Profile.IdealIterTime(capacity)
	for i := 0; i < n; i++ {
		t := sim.Time(i)*bucket + bucket/2
		if t < spec.StartOffset {
			continue
		}
		phase := (t - spec.StartOffset) % period
		if phase < commDur {
			out[i] = capacity
		}
	}
	return out
}
