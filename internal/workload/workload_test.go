package workload

import (
	"testing"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

const linkRate = 50 * units.Gbps

func TestCalibratedIdealIterationTimes(t *testing.T) {
	// §2: J1 (GPT-3) ideal iteration 1.2s; GPT-2 jobs 1.8s at 50 Gbps.
	if got := GPT3.IdealIterTime(linkRate); got != 1200*sim.Millisecond {
		t.Errorf("GPT3 ideal T = %v, want 1.2s", got)
	}
	if got := GPT2.IdealIterTime(linkRate); got != 1800*sim.Millisecond {
		t.Errorf("GPT2 ideal T = %v, want 1.8s", got)
	}
}

func TestCommFractions(t *testing.T) {
	if got := GPT3.CommFraction(linkRate); !nearF(got, 1.0/3) {
		t.Errorf("GPT3 a = %v, want 1/3", got)
	}
	if got := GPT2.CommFraction(linkRate); !nearF(got, 1.0/9) {
		t.Errorf("GPT2 a = %v, want 1/9", got)
	}
}

func nearF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestFourJobScenarioIsInterleavable(t *testing.T) {
	// The Fig. 2 scenario over the hyperperiod lcm(1.2, 1.8) = 3.6s:
	// 3 GPT-3 comm phases (0.4s) + 3 jobs × 2 GPT-2 comm phases (0.2s)
	// = 2.4s of demand in 3.6s, and offsets (0, 0.4, 1.0, 1.6)s tile it
	// with zero overlap (verified bucket by bucket here; the sched
	// package's optimizer rediscovers such offsets).
	const H = 3600 // ms
	busy := make([]int, H)
	add := func(offsetMS, periodMS, durMS int) {
		for s := offsetMS; s < H; s += periodMS {
			for t := s; t < s+durMS; t++ {
				busy[t%H]++
			}
		}
	}
	add(0, 1200, 400)
	for _, o := range []int{400, 1000, 1600} {
		add(o, 1800, 200)
	}
	for t0, b := range busy {
		if b > 1 {
			t.Fatalf("overlap at t=%dms: %d jobs communicating", t0, b)
		}
	}
	// SRPT slowdown arithmetic from §2: J1's comm is delayed by the
	// three smaller jobs every iteration: 1.2s + 3×0.2s = 1.8s = 1.5×.
	commGPT2 := linkRate.TransmissionTime(int64(GPT2.CommBytes))
	if got := GPT3.IdealIterTime(linkRate) + 3*commGPT2; got != 1800*sim.Millisecond {
		t.Errorf("SRPT-delayed J1 iteration = %v, want 1.8s", got)
	}
}

func TestScalePreservesShape(t *testing.T) {
	s := GPT3.Scale(0.01)
	// a is rate-dependent but invariant under joint scaling.
	if got, want := s.CommFraction(linkRate), GPT3.CommFraction(linkRate); !nearF(got, want) {
		t.Errorf("scaled a = %v, want %v", got, want)
	}
	if got, want := s.IdealIterTime(linkRate).Seconds(), GPT3.IdealIterTime(linkRate).Seconds()*0.01; !nearF(got/want, 1) {
		t.Errorf("scaled T = %v, want %v", got, want)
	}
}

func TestProfilesRegistry(t *testing.T) {
	m := Profiles()
	for _, name := range []string{"gpt3", "gpt2", "bert", "resnet50", "vgg16", "dlrm"} {
		p, ok := m[name]
		if !ok {
			t.Errorf("profile %q missing", name)
			continue
		}
		if p.ComputeTime <= 0 || p.CommBytes <= 0 {
			t.Errorf("profile %q has non-positive fields: %v", name, p)
		}
	}
}

func TestSpecLabel(t *testing.T) {
	if got := (Spec{Profile: GPT2}).Label(); got != "gpt2" {
		t.Errorf("Label = %q", got)
	}
	if got := (Spec{Name: "J1", Profile: GPT2}).Label(); got != "J1" {
		t.Errorf("Label = %q", got)
	}
}

func TestDemandTraceOnOffPattern(t *testing.T) {
	spec := Spec{Profile: GPT3} // period 1.2s, comm 0.4s at 50Gbps
	trace := DemandTrace(spec, linkRate, 2400*sim.Millisecond, 100*sim.Millisecond)
	if len(trace) != 24 {
		t.Fatalf("trace length = %d, want 24", len(trace))
	}
	// First 4 buckets (0-0.4s): comm at line rate; next 8: zero.
	for i := 0; i < 4; i++ {
		if trace[i] != linkRate {
			t.Errorf("bucket %d = %v, want line rate", i, trace[i])
		}
	}
	for i := 4; i < 12; i++ {
		if trace[i] != 0 {
			t.Errorf("bucket %d = %v, want 0", i, trace[i])
		}
	}
	// Second period repeats.
	if trace[12] != linkRate || trace[18] != 0 {
		t.Error("pattern does not repeat with period 1.2s")
	}
}

func TestDemandTraceOffset(t *testing.T) {
	spec := Spec{Profile: GPT3, StartOffset: 600 * sim.Millisecond}
	trace := DemandTrace(spec, linkRate, 1200*sim.Millisecond, 100*sim.Millisecond)
	for i := 0; i < 6; i++ {
		if trace[i] != 0 {
			t.Errorf("bucket %d = %v before offset, want 0", i, trace[i])
		}
	}
	if trace[6] != linkRate {
		t.Errorf("bucket 6 = %v, want line rate after offset", trace[6])
	}
}
