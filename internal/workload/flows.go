package workload

import (
	"fmt"
	"math"
	"sort"

	"mltcp/internal/sim"
)

// SizeDist is an empirical flow-size distribution, sampled by inverse
// transform with log-linear interpolation between anchor points. It
// models the conventional datacenter traffic §2 contrasts with DNN jobs
// ("bursty and short", heavy-tailed).
type SizeDist struct {
	name    string
	bytes   []float64 // ascending sizes
	cumProb []float64 // matching cumulative probabilities, ending at 1
}

// NewSizeDist builds a distribution from (size, cumulative probability)
// anchors. Probabilities must be ascending and end at 1.
func NewSizeDist(name string, sizes []float64, cum []float64) *SizeDist {
	if len(sizes) != len(cum) || len(sizes) < 2 {
		panic("workload: size distribution needs matching anchors (>= 2)")
	}
	if !sort.Float64sAreSorted(sizes) || !sort.Float64sAreSorted(cum) {
		panic(fmt.Sprintf("workload: %s anchors must be ascending", name))
	}
	if cum[len(cum)-1] != 1 { //lint:allow simunits anchors are literal constants; the final cumulative probability must be exactly 1
		panic(fmt.Sprintf("workload: %s cumulative probability must end at 1", name))
	}
	return &SizeDist{name: name, bytes: sizes, cumProb: cum}
}

// WebSearch approximates the web-search workload used by the DCTCP and
// pFabric evaluations: mostly short query traffic with a heavy tail of
// multi-megabyte background flows.
func WebSearch() *SizeDist {
	return NewSizeDist("websearch",
		[]float64{6e3, 13e3, 19e3, 33e3, 53e3, 133e3, 667e3, 1.7e6, 6.7e6, 20e6, 30e6},
		[]float64{0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.97, 1.0})
}

// DataMining approximates the data-mining workload from the same papers:
// even more mass at tiny flows, an even heavier tail.
func DataMining() *SizeDist {
	return NewSizeDist("datamining",
		[]float64{100, 1e3, 2e3, 5e3, 50e3, 1e6, 10e6, 100e6},
		[]float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 1.0})
}

// Name returns the distribution's label.
func (d *SizeDist) Name() string { return d.name }

// Sample draws one flow size in bytes (at least 1).
func (d *SizeDist) Sample(rng *sim.RNG) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cumProb, u)
	if i == 0 {
		return int64(d.bytes[0])
	}
	if i >= len(d.bytes) {
		return int64(d.bytes[len(d.bytes)-1])
	}
	// Log-linear interpolation between anchors captures the tail
	// better than linear.
	p0, p1 := d.cumProb[i-1], d.cumProb[i]
	frac := (u - p0) / (p1 - p0)
	lo, hi := math.Log(d.bytes[i-1]), math.Log(d.bytes[i])
	v := math.Exp(lo + frac*(hi-lo))
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// Mean estimates the distribution's mean by quadrature over the anchors
// (exact enough for load calculations).
func (d *SizeDist) Mean() float64 {
	var mean float64
	prev := 0.0
	for i := range d.bytes {
		p := d.cumProb[i] - prev
		sz := d.bytes[i]
		if i > 0 {
			sz = math.Sqrt(d.bytes[i-1] * d.bytes[i]) // log-midpoint
		}
		mean += p * sz
		prev = d.cumProb[i]
	}
	return mean
}

// PoissonArrivals generates exponentially distributed inter-arrival gaps
// for a target arrival rate (flows per second).
type PoissonArrivals struct {
	rate float64
	rng  *sim.RNG
}

// NewPoissonArrivals builds a generator with the given rate.
func NewPoissonArrivals(ratePerSec float64, rng *sim.RNG) *PoissonArrivals {
	if ratePerSec <= 0 {
		panic("workload: arrival rate must be positive")
	}
	return &PoissonArrivals{rate: ratePerSec, rng: rng}
}

// Next returns the gap to the next arrival.
func (p *PoissonArrivals) Next() sim.Time {
	u := 1 - p.rng.Float64() // avoid log(0)
	return sim.FromSeconds(-math.Log(u) / p.rate)
}
