package gen

import (
	"fmt"
	"strings"

	"mltcp/internal/config"
	"mltcp/internal/experiments"
	"mltcp/internal/sim"
)

// gridSeed fixes the internal stream that samples grid variations
// (durations, capacities, staggers). It is independent of the corpus seed
// on purpose: the grid is part of the corpus *format*, and the seed only
// perturbs run-time noise/ECMP streams.
const gridSeed = 42

// dumbbell builds a single-bottleneck scenario from profile names. A
// name may carry a replica count suffix ("gpt2*4").
func dumbbell(name, policy string, durationSec, capGbps float64, jobs ...string) *config.Scenario {
	s := &config.Scenario{
		Name:         name,
		Policy:       policy,
		DurationSec:  durationSec,
		CapacityGbps: capGbps,
	}
	for _, j := range jobs {
		prof, count := j, 0
		if base, n, ok := strings.Cut(j, "*"); ok {
			prof = base
			count = int(n[0] - '0')
		}
		s.Jobs = append(s.Jobs, config.Job{Profile: prof, Count: count})
	}
	return s
}

// profileSets are the dumbbell workload mixes both grids draw from,
// spanning comm-heavy, compute-heavy, homogeneous, and mixed shapes.
var profileSets = [][]string{
	{"gpt2", "gpt2"},
	{"gpt3", "gpt2*3"},
	{"gpt3", "gpt2"},
	{"gpt3", "gpt3"},
	{"bert", "vgg16"},
	{"gpt2*4"},
	{"gpt2", "bert", "resnet50", "vgg16"},
	{"dlrm", "dlrm"},
	{"bert*3"},
	{"vgg16*2", "dlrm"},
	{"gpt3", "bert"},
	{"gpt2*8"},
}

func setLabel(set []string) string { return strings.Join(set, "+") }

// centralizedSafe reports whether a profile set's iteration periods are
// commensurate enough for the centralized offset optimizer: sched.Optimize
// sweeps the jobs' common hyperperiod, which explodes for mixes like
// vgg16/resnet50 whose comm durations have a tiny GCD. The grid only runs
// centralized points on sets whose hyperperiod stays small (and pins them
// to the default 50 Gbps for the same reason).
func centralizedSafe(set []string) bool {
	for _, j := range set {
		base, _, _ := strings.Cut(j, "*")
		switch base {
		case "vgg16", "resnet50":
			return false
		}
	}
	return true
}

// fullGrid is the production training grid: every profile set crossed
// with every policy under sampled duration/capacity/stagger variation,
// mltcp slope/intercept variants, both eval scenarios verbatim, and a
// spread of trace-driven cluster scenarios.
func fullGrid() []*config.Scenario {
	rng := sim.NewRNG(gridSeed)
	durations := []float64{60, 90, 120}
	capacities := []float64{25, 50, 100}
	staggers := []float64{0, 5, 10}
	policies := append(config.CCPolicyNames(), "srpt", "las", "centralized")
	var out []*config.Scenario
	for _, set := range profileSets {
		for _, pol := range policies {
			// Draw variation before the safety gate so skipping a point
			// does not shift later scenarios' draws.
			dur := durations[rng.Intn(len(durations))]
			capG := capacities[rng.Intn(len(capacities))]
			st := staggers[rng.Intn(len(staggers))]
			dur2 := durations[rng.Intn(len(durations))]
			if pol == "centralized" && !centralizedSafe(set) {
				continue
			}
			if pol == "centralized" {
				capG = 50
			}
			s := dumbbell(setLabel(set)+"/"+pol, pol, dur, capG, set...)
			s.StaggerMS = &st
			out = append(out, s)
			// A second draw at the default 50 Gbps widens coverage of the
			// capacity the eval scenarios run at.
			s2 := dumbbell(setLabel(set)+"/"+pol+"/50g", pol, dur2, 50, set...)
			out = append(out, s2)
		}
		// MLTCP aggressiveness variants (Equation 2 parameters).
		for vi, si := range [][]float64{{1, 0.5}, {2.5, 0.1}, {1.75, 0.25}} {
			s := dumbbell(fmt.Sprintf("%s/mltcp-si%d", setLabel(set), vi), "mltcp", 90, 50, set...)
			s.SlopeIntercept = si
			out = append(out, s)
		}
	}
	out = append(out, experiments.CanonicalTwoJob())
	out = append(out, clusterScenarios(false)...)
	return out
}

// quickGrid is the CI-sized grid: a policy/mix sample plus both eval
// scenarios, small enough to regenerate in seconds.
func quickGrid() []*config.Scenario {
	var out []*config.Scenario
	quick := []struct {
		set []string
		pol string
		dur float64
	}{
		{[]string{"gpt2", "gpt2"}, "mltcp", 60},
		{[]string{"gpt2", "gpt2"}, "reno", 60},
		{[]string{"gpt2", "gpt2"}, "srpt", 60},
		{[]string{"gpt2", "gpt2"}, "centralized", 60},
		{[]string{"gpt3", "gpt2*3"}, "mltcp", 60},
		{[]string{"gpt3", "gpt2*3"}, "cubic", 60},
		{[]string{"bert", "vgg16"}, "mltcp-dctcp", 45},
		{[]string{"bert", "vgg16"}, "swift", 45},
		{[]string{"dlrm", "dlrm"}, "mltcp", 45},
		{[]string{"gpt2*4"}, "mltcp", 60},
		{[]string{"gpt2*4"}, "las", 60},
		{[]string{"gpt3", "bert"}, "mltcp-swift", 45},
	}
	for _, q := range quick {
		out = append(out, dumbbell(setLabel(q.set)+"/"+q.pol, q.pol, q.dur, 50, q.set...))
	}
	out = append(out, experiments.CanonicalTwoJob())
	out = append(out, clusterScenarios(true)...)
	return out
}

// evalClusterOpts is the quick cluster scenario the acceptance criteria
// evaluate prediction error on; both grids include it verbatim.
func evalClusterOpts() experiments.ClusterOpts { return experiments.QuickClusterOpts() }

// clusterScenarios returns the trace-driven cluster slice of a grid.
func clusterScenarios(quick bool) []*config.Scenario {
	var out []*config.Scenario
	add := func(o experiments.ClusterOpts, suffix string) {
		s := experiments.ClusterScenario(o)
		if suffix != "" {
			s.Name += "/" + suffix
		}
		out = append(out, s)
	}
	// The eval trace appears several times so training sees several run
	// seeds (each grid position derives its own seed, hence its own ECMP
	// placement of the same arrivals).
	add(evalClusterOpts(), "")
	add(evalClusterOpts(), "r2")
	if quick {
		add(evalClusterOpts(), "r3")
		small := evalClusterOpts()
		small.Jobs = 16
		small.DurationSec = 8
		small.Policy = "reno"
		add(small, "reno")
		return out
	}
	add(evalClusterOpts(), "r3")
	add(evalClusterOpts(), "r4")
	add(evalClusterOpts(), "r5")
	add(evalClusterOpts(), "r6")
	ft4 := func() experiments.ClusterOpts {
		o := evalClusterOpts()
		return o
	}
	// No centralized cluster point: the offset optimizer's hyperperiod
	// sweep is intractable for 24 heterogeneous per-path periods.
	for _, pol := range []string{"reno", "cubic", "mltcp-dctcp", "mltcp-swift"} {
		o := ft4()
		o.Policy = pol
		add(o, pol)
	}
	for _, seed := range []uint64{7, 23, 31} {
		o := ft4()
		o.Seed = seed
		add(o, fmt.Sprintf("trace%d", seed))
	}
	for _, jobs := range []int{12, 16, 32, 48} {
		o := ft4()
		o.Jobs = jobs
		add(o, "")
	}
	for _, rate := range []float64{2, 4} {
		o := ft4()
		o.ArrivalRatePerSec = rate
		o.DurationSec = 15
		add(o, fmt.Sprintf("rate%g", rate))
	}
	for _, mi := range []int{4, 16} {
		o := ft4()
		o.MeanIters = mi
		add(o, fmt.Sprintf("iters%d", mi))
	}
	ls := experiments.ClusterOpts{
		Topology:          &config.Topology{Kind: config.KindLeafSpine, Leaves: 4, Spines: 2, HostsPerLeaf: 4},
		Jobs:              20,
		ArrivalRatePerSec: 6,
		MeanIters:         8,
		DurationSec:       12,
		Seed:              11,
	}
	add(ls, "")
	lsr := ls
	lsr.Policy = "reno"
	add(lsr, "reno")
	return out
}
