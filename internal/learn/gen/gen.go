// Package gen generates training corpora for the learned backend: it
// fans scenario grids over the harness worker pool with an exact backend
// (fluid by default), extracts each run's feature vectors and simulated
// targets, and assembles them into the versioned JSONL corpus format of
// internal/learn. Grids are pure functions — the same (grid, seed) yields
// byte-identical corpora at any worker count.
package gen

import (
	"context"
	"fmt"
	"strings"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/harness"
	"mltcp/internal/learn"
	"mltcp/internal/place"
	"mltcp/internal/sim"
)

// GridNames returns the available grid names in a stable order.
func GridNames() []string { return []string{"quick", "full"} }

// Grid returns the named scenario grid, normalized and ready to run.
func Grid(name string) ([]*config.Scenario, error) {
	var scns []*config.Scenario
	switch name {
	case "quick":
		scns = quickGrid()
	case "full":
		scns = fullGrid()
	default:
		return nil, fmt.Errorf("gen: unknown grid %q (valid: %s)",
			name, strings.Join(GridNames(), ", "))
	}
	for _, s := range scns {
		if err := s.Normalize(); err != nil {
			return nil, fmt.Errorf("gen: grid %q scenario %q: %w", name, s.Name, err)
		}
	}
	return scns, nil
}

// Generate runs the named grid on the named backend and extracts one
// corpus run per scenario. Scenario i runs with seed
// sim.DeriveSeed(seed, i) on any free worker; results are assembled in
// grid order, so the corpus is byte-identical at any worker count.
// Topology scenarios are dropped for non-fluid backends (the packet stack
// has no fabric model); the drop is by grid position, hence deterministic.
func Generate(ctx context.Context, gridName, backendName string, seed uint64, workers int) (learn.CorpusHeader, []learn.CorpusRun, error) {
	b, err := backend.New(backendName)
	if err != nil {
		return learn.CorpusHeader{}, nil, err
	}
	scns, err := Grid(gridName)
	if err != nil {
		return learn.CorpusHeader{}, nil, err
	}
	if backendName != backend.NameFluid {
		kept := scns[:0]
		for _, s := range scns {
			_, _, cc := s.CC()
			if s.Topology == nil && (cc || s.Centralized()) {
				kept = append(kept, s)
			}
		}
		scns = kept
	}
	cfg := harness.Config{Workers: workers, BaseSeed: seed}
	rs := harness.Run(ctx, cfg, len(scns), func(ctx context.Context, pt harness.Point) (learn.CorpusRun, error) {
		res, err := b.Run(ctx, scns[pt.Index], pt.Seed)
		if err != nil {
			return learn.CorpusRun{}, err
		}
		return runFromResult(scns[pt.Index], pt.Seed, res), nil
	})
	runs, err := harness.Values(rs)
	if err != nil {
		return learn.CorpusHeader{}, nil, err
	}
	h := learn.CorpusHeader{Grid: gridName, Backend: backendName, Seed: seed, Runs: len(runs)}
	return h, runs, nil
}

// runFromResult turns one simulated result into a corpus line: the
// scenario's feature vectors plus every head target the model trains on.
func runFromResult(s *config.Scenario, seed uint64, res *backend.Result) learn.CorpusRun {
	specs := s.Specs()
	cl := place.Compile(s, specs, seed)
	f := learn.Extract(s, specs, cl)
	run := learn.CorpusRun{
		Scenario: s.Name,
		Seed:     seed,
		Scn:      f.Scenario.Map(),
		Overlap:  res.OverlapScore,
	}
	maxIter := 0
	for _, j := range res.Jobs {
		if len(j.IterTimes) > maxIter {
			maxIter = len(j.IterTimes)
		}
	}
	run.InterleaveFrac = learn.InterleaveNever
	if res.InterleavedAt >= 0 && maxIter > 0 {
		run.InterleaveFrac = float64(res.InterleavedAt) / float64(maxIter)
	}
	for q := sim.Time(0); q < 4; q++ {
		run.OverlapQ = append(run.OverlapQ, backend.OverlapScoreOf(res.Jobs,
			res.Duration*q/4, res.Duration*(q+1)/4))
	}
	for i, j := range res.Jobs {
		run.Jobs = append(run.Jobs, learn.CorpusJob{
			F:        f.Jobs[i].Map(),
			Slowdown: j.Slowdown(learn.SteadySkip),
		})
	}
	if res.Cluster != nil {
		run.Topology = true
		run.SharedOverlap = res.Cluster.SharedOverlap
		run.DisjointOverlap = res.Cluster.DisjointOverlap
	}
	return run
}
