package gen

import (
	"bytes"
	"context"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/learn"
)

// TestGenerateWorkerCountInvariant is the corpus half of the determinism
// guarantee: the quick grid serialized from a 1-worker run and an
// 8-worker run must be byte-identical — results assemble in grid order
// and each scenario's seed derives from its grid position, never from
// scheduling.
func TestGenerateWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick grid twice")
	}
	gen := func(workers int) []byte {
		h, runs, err := Generate(context.Background(), "quick", backend.NameFluid, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := learn.WriteCorpus(&b, h, runs); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	serial, parallel := gen(1), gen(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("quick-grid corpus bytes differ between 1 and 8 workers")
	}
	if _, runs, err := learn.ReadCorpus(bytes.NewReader(serial)); err != nil || len(runs) == 0 {
		t.Fatalf("generated corpus does not parse: %v (%d runs)", err, len(runs))
	}
}

// TestGridNamesResolve: every advertised grid builds and normalizes, and
// scenario names are unique (duplicate names would collapse corpus
// provenance).
func TestGridNamesResolve(t *testing.T) {
	for _, name := range GridNames() {
		scns, err := Grid(name)
		if err != nil {
			t.Fatalf("grid %q: %v", name, err)
		}
		if len(scns) == 0 {
			t.Fatalf("grid %q is empty", name)
		}
		seen := map[string]bool{}
		for _, s := range scns {
			if seen[s.Name] {
				t.Errorf("grid %q: duplicate scenario name %q", name, s.Name)
			}
			seen[s.Name] = true
		}
	}
	if _, err := Grid("nope"); err == nil {
		t.Fatal("unknown grid accepted")
	}
}
