package learn

import (
	"encoding/json"
	"fmt"
	"io"
)

// ModelSchema versions the model file format. Readers reject other
// schemas instead of misinterpreting bytes.
const ModelSchema = 1

// Head names every quantity the default model predicts. Slowdown is the
// only per-job head; the rest are scenario-level.
const (
	HeadSlowdown      = "slowdown"         // per-job steady-state slowdown (≥1)
	HeadOverlap       = "overlap"          // dumbbell overlap score ∈ [0,1]
	HeadInterleave    = "interleave_frac"  // InterleavedAt / max iterations; 1.25 = never
	HeadSharedOverlap = "shared_overlap"   // topology: overlap among link-sharing pairs
	HeadDisjointLoad  = "disjoint_overlap" // topology: overlap among disjoint pairs
	HeadOverlapQ1     = "overlap_q1"       // overlap score per duration quarter
	HeadOverlapQ2     = "overlap_q2"
	HeadOverlapQ3     = "overlap_q3"
	HeadOverlapQ4     = "overlap_q4"
)

// InterleaveNever is the regression target encoding "the scenario never
// interleaved" for HeadInterleave: safely above every achievable fraction
// (≤1) so the serving threshold can separate the two cases.
const InterleaveNever = 1.25

// Stump is one boosted decision stump: x[Dim] ≤ Threshold chooses Left,
// else Right. Leaf values already include the training shrinkage.
type Stump struct {
	Dim       int     `json:"dim"`
	Threshold float64 `json:"threshold"`
	Left      float64 `json:"left"`
	Right     float64 `json:"right"`
}

// HeadModel predicts one target: a ridge-regression base over the hashed
// feature space plus a boosted-stump correction on its residuals.
type HeadModel struct {
	Name    string    `json:"name"`
	Weights []float64 `json:"weights"`
	Stumps  []Stump   `json:"stumps,omitempty"`
}

// Predict evaluates the head on a dense hashed vector of length Dim.
func (h *HeadModel) Predict(x []float64) float64 {
	var y float64
	for i, w := range h.Weights {
		y += w * x[i]
	}
	for _, s := range h.Stumps {
		if x[s.Dim] <= s.Threshold {
			y += s.Left
		} else {
			y += s.Right
		}
	}
	return y
}

// Model is a trained learned-backend model: one head per predicted
// quantity over a shared hashed feature space. Heads are kept sorted by
// name so the serialized form is canonical.
type Model struct {
	Schema int         `json:"schema"`
	Dim    int         `json:"dim"`
	Seed   uint64      `json:"seed"`
	Corpus string      `json:"corpus"` // provenance note: grid name + run count
	Heads  []HeadModel `json:"heads"`
}

// Head returns the named head, or nil if the model does not predict it.
func (m *Model) Head(name string) *HeadModel {
	for i := range m.Heads {
		if m.Heads[i].Name == name {
			return &m.Heads[i]
		}
	}
	return nil
}

// Encode writes the model as indented JSON with a trailing newline. The
// encoding is canonical: struct field order is fixed and heads are sorted,
// so equal models produce equal bytes.
func (m *Model) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("learn: encode model: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadModel parses and validates a model file.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("learn: parse model: %w", err)
	}
	if m.Schema != ModelSchema {
		return nil, fmt.Errorf("learn: model schema %d, want %d", m.Schema, ModelSchema)
	}
	if m.Dim != Dim {
		return nil, fmt.Errorf("learn: model dim %d, want %d", m.Dim, Dim)
	}
	for _, h := range m.Heads {
		if len(h.Weights) != m.Dim {
			return nil, fmt.Errorf("learn: head %q has %d weights, want %d", h.Name, len(h.Weights), m.Dim)
		}
		for _, s := range h.Stumps {
			if s.Dim < 0 || s.Dim >= m.Dim {
				return nil, fmt.Errorf("learn: head %q stump dim %d out of range", h.Name, s.Dim)
			}
		}
	}
	return &m, nil
}
