package learn

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// syntheticCorpus builds a small deterministic corpus with enough runs
// and jobs to exercise the ridge base, the boosting path, and every
// scenario-level head.
func syntheticCorpus() (CorpusHeader, []CorpusRun) {
	var runs []CorpusRun
	for r := 0; r < 24; r++ {
		load := 0.5 + 0.1*float64(r%7)
		run := CorpusRun{
			Scenario: fmt.Sprintf("syn-%d", r),
			Seed:     uint64(r),
			Scn: map[string]float64{
				"bias":      1,
				"njobs":     float64(2 + r%3),
				"mean_load": load,
			},
			Overlap:        math.Mod(0.37*float64(r+1), 1),
			InterleaveFrac: math.Mod(0.21*float64(r+1), 1.25),
			OverlapQ: []float64{
				math.Mod(0.13*float64(r+1), 1),
				math.Mod(0.29*float64(r+1), 1),
				math.Mod(0.41*float64(r+1), 1),
				math.Mod(0.53*float64(r+1), 1),
			},
		}
		for j := 0; j < 2+r%3; j++ {
			a := 0.2 + 0.05*float64((r+j)%9)
			run.Jobs = append(run.Jobs, CorpusJob{
				F:        map[string]float64{"j:a": a, "j:load": load + a},
				Slowdown: 1 + a*load,
			})
		}
		runs = append(runs, run)
	}
	h := CorpusHeader{Grid: "synthetic", Backend: "fluid", Seed: 7, Runs: len(runs)}
	return h, runs
}

// TestTrainDeterministic is the training half of the determinism
// guarantee: equal (corpus, seed) must encode byte-identical models.
func TestTrainDeterministic(t *testing.T) {
	h, runs := syntheticCorpus()
	enc := func() []byte {
		m := Train(h, runs, TrainOpts{Seed: 3})
		var b bytes.Buffer
		if err := m.Encode(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first, second := enc(), enc()
	if !bytes.Equal(first, second) {
		t.Fatal("same (corpus, seed) trained different model bytes")
	}

	m, err := ReadModel(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("trained model does not round-trip: %v", err)
	}
	if m.Head(HeadSlowdown) == nil {
		t.Fatal("trained model has no slowdown head")
	}
	for _, head := range m.Heads {
		if head.Name != HeadSlowdown && len(head.Stumps) > scenarioRounds {
			t.Errorf("scenario head %q fit %d stumps, cap is %d",
				head.Name, len(head.Stumps), scenarioRounds)
		}
	}
}

// TestTrainSeedChangesModel guards against the seed being silently
// ignored: training randomness (feature subsampling, tie-breaking) must
// flow from it.
func TestTrainSeedChangesModel(t *testing.T) {
	h, runs := syntheticCorpus()
	enc := func(seed uint64) []byte {
		var b bytes.Buffer
		if err := Train(h, runs, TrainOpts{Seed: seed}).Encode(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if bytes.Equal(enc(3), enc(4)) {
		t.Fatal("different training seeds produced identical model bytes")
	}
}

// TestCorpusRoundTrip pins the corpus JSONL encoder/decoder pair and its
// byte determinism.
func TestCorpusRoundTrip(t *testing.T) {
	h, runs := syntheticCorpus()
	var a bytes.Buffer
	if err := WriteCorpus(&a, h, runs); err != nil {
		t.Fatal(err)
	}
	gotH, gotRuns, err := ReadCorpus(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Grid != h.Grid || gotH.Backend != h.Backend || gotH.Runs != len(runs) {
		t.Fatalf("header round-trip: %+v", gotH)
	}
	var b bytes.Buffer
	if err := WriteCorpus(&b, gotH, gotRuns); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("corpus re-encode diverged from original bytes")
	}
}

// TestExamplesFromCorpusSkipsZeroSlowdownJobs: jobs the simulator never
// saw complete an iteration carry no slowdown signal and must not train
// the per-job head.
func TestExamplesFromCorpusSkipsZeroSlowdownJobs(t *testing.T) {
	runs := []CorpusRun{{
		Scenario: "z",
		Scn:      map[string]float64{"bias": 1},
		Jobs: []CorpusJob{
			{F: map[string]float64{"j:a": 0.3}, Slowdown: 1.2},
			{F: map[string]float64{"j:a": 0.4}, Slowdown: 0},
		},
	}}
	sets := ExamplesFromCorpus(runs)
	if got := len(sets[HeadSlowdown]); got != 1 {
		t.Fatalf("slowdown head got %d examples, want 1", got)
	}
}
