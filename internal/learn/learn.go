// Package learn is the m4-style learned-simulation subsystem: it turns
// scenarios into feature vectors, simulator runs into training examples,
// and a versioned corpus into a small pure-Go regression model that
// predicts flow-level outcomes (per-job steady-state slowdown, overlap
// scores, the interleave point) in microseconds instead of re-simulating
// them. backend.Learned serves these predictions behind the ordinary
// Backend interface as the repo's third fidelity tier.
//
// Every stage is deterministic by construction: feature extraction is a
// pure function of (scenario, seed), the corpus encoder emits sorted-key
// JSON lines so generation is byte-identical at any harness worker count,
// and training draws all of its randomness (stump tie-breaking, feature
// subsampling) from a SplitMix64 stream seeded by the caller — the same
// (corpus, seed) always trains the same model file, byte for byte.
package learn

// SteadySkip is the transient cut every corpus slowdown target is stated
// at, matching the canonical cross-fidelity skip in internal/experiments.
// Served predictions are skip-invariant (synthesized timelines are
// uniform), so one labeling convention suffices.
const SteadySkip = 20

// Feature is one named input to the model. Vectors are ordered slices —
// never maps — so every consumer iterates them deterministically.
type Feature struct {
	Name  string
	Value float64
}

// Vector is an ordered feature list.
type Vector []Feature
