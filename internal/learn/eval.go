package learn

// JobLayout is the name-dependent half of per-job head evaluation: hash
// slots and signs for each feature position, the set of dims job features
// can touch, and the partition of the head's stumps into those that can
// move per job and those that cannot. It depends only on the prototype
// vector's feature *names* — Extract emits the same job-vector layout for
// every job of a scenario, and the names vary only with the policy — so a
// serving path can build the layout once per (head, policy) and reuse it
// across scenarios and seeds.
type JobLayout struct {
	head  *HeadModel
	slots []int     // feature position → hashed dim
	signs []float64 // feature position → hash sign
	pos   []int     // feature position → index into dims
	dims  []int     // unique dims job features touch

	varStumps []int32 // indices into head.Stumps on touched dims
	varDim    []int32 // varStumps position → index into dims
	fixStumps []int32 // indices into head.Stumps no job feature can move
}

// NewJobLayout computes the layout of h for job vectors shaped like
// proto. Every vector later passed to JobEval.Predict must carry the same
// feature names in the same order (values are free to differ).
func NewJobLayout(h *HeadModel, proto Vector) *JobLayout {
	l := &JobLayout{
		head:  h,
		slots: make([]int, 0, len(proto)),
		signs: make([]float64, 0, len(proto)),
		pos:   make([]int, 0, len(proto)),
		dims:  make([]int, 0, len(proto)),
	}
	var dimIdx [Dim]int16
	for i := range dimIdx {
		dimIdx[i] = -1
	}
	for _, f := range proto {
		idx, sign := slot(f.Name)
		l.slots = append(l.slots, idx)
		l.signs = append(l.signs, sign)
		di := dimIdx[idx]
		if di < 0 {
			di = int16(len(l.dims))
			dimIdx[idx] = di
			l.dims = append(l.dims, idx)
		}
		l.pos = append(l.pos, int(di))
	}
	l.varStumps = make([]int32, 0, len(h.Stumps))
	l.varDim = make([]int32, 0, len(h.Stumps))
	for si := range h.Stumps {
		if di := dimIdx[h.Stumps[si].Dim]; di >= 0 {
			l.varStumps = append(l.varStumps, int32(si))
			l.varDim = append(l.varDim, int32(di))
		} else {
			l.fixStumps = append(l.fixStumps, int32(si))
		}
	}
	return l
}

// Eval binds the layout to one scenario's hashed base vector, resolving
// the base dot product and every stump job features cannot move. sv must
// be the scenario vector base was hashed from (the sparse dot over sv
// equals the dense dot over base by linearity of hashing).
func (l *JobLayout) Eval(base []float64, sv Vector) *JobEval {
	return l.finishEval(base, DotVector(l.head.Weights, sv))
}

// EvalHashed is Eval with the scenario vector's slots pre-resolved —
// bit-identical to Eval(base, v) for hv = NewHashedVector(v), without
// re-hashing any feature name.
func (l *JobLayout) EvalHashed(base []float64, hv *HashedVector) *JobEval {
	return l.finishEval(base, hv.Dot(l.head.Weights))
}

func (l *JobLayout) finishEval(base []float64, baseY float64) *JobEval {
	e := &JobEval{
		layout: l,
		base:   base,
		xd:     make([]float64, len(l.dims)),
		baseY:  baseY,
	}
	stumps := l.head.Stumps
	for _, si := range l.fixStumps {
		s := &stumps[si]
		if base[s.Dim] <= s.Threshold {
			e.baseY += s.Left
		} else {
			e.baseY += s.Right
		}
	}
	return e
}

// JobEval scores the jobs of one scenario against a fixed hashed base.
// Each job costs O(len(vector) + touched dims + movable stumps) instead
// of O(Dim + all stumps).
type JobEval struct {
	layout *JobLayout
	base   []float64
	baseY  float64   // weights·base plus stumps on untouched dims
	xd     []float64 // scratch: current value of each touched dim
}

// NewJobEval prepares h for repeated job scoring against a fixed hashed
// scenario base: NewJobLayout + Eval in one step, for callers that do not
// reuse the layout. sv must be the scenario vector base was hashed from;
// proto fixes the job-vector layout.
func NewJobEval(h *HeadModel, base []float64, sv, proto Vector) *JobEval {
	return NewJobLayout(h, proto).Eval(base, sv)
}

// Predict scores one job vector laid out like the layout's prototype. A
// vector with a different length falls back to the dense path (copy base,
// hash, full head evaluation) so a layout mismatch degrades to
// correct-but-slow.
func (e *JobEval) Predict(v Vector) float64 {
	l := e.layout
	if len(v) != len(l.slots) {
		x := make([]float64, len(e.base))
		copy(x, e.base)
		HashInto(x, v)
		return l.head.Predict(x)
	}
	for i, d := range l.dims {
		e.xd[i] = e.base[d]
	}
	for p, f := range v {
		e.xd[l.pos[p]] += l.signs[p] * f.Value
	}
	y := e.baseY
	w := l.head.Weights
	for i, d := range l.dims {
		y += w[d] * (e.xd[i] - e.base[d])
	}
	stumps := l.head.Stumps
	for vi, si := range l.varStumps {
		s := &stumps[si]
		if e.xd[l.varDim[vi]] <= s.Threshold {
			y += s.Left
		} else {
			y += s.Right
		}
	}
	return y
}

// DotVector is the sparse weighted sum of a feature vector: equal to the
// dense dot product of w with the vector's hashed image, without touching
// the Dim-Dim zero slots.
func DotVector(w []float64, v Vector) float64 {
	var y float64
	for _, f := range v {
		idx, sign := slot(f.Name)
		y += w[idx] * sign * f.Value
	}
	return y
}

// HashedVector is a feature vector with every name's hash slot resolved
// once. Serving evaluates one scenario vector against several heads;
// DotVector re-hashes each name per call, which dominates a
// microsecond-budget Run, so Learned.Run resolves the slots a single
// time and reuses them. Dot and AddTo keep DotVector's and HashInto's
// exact operation order, so predictions match bit for bit.
type HashedVector struct {
	idx  []int32
	sign []float64
	val  []float64
}

// NewHashedVector resolves v's hash slots and signs.
func NewHashedVector(v Vector) *HashedVector {
	n := len(v)
	buf := make([]float64, 2*n)
	hv := &HashedVector{idx: make([]int32, n), sign: buf[:n], val: buf[n:]}
	for i, f := range v {
		idx, sign := slot(f.Name)
		hv.idx[i] = int32(idx)
		hv.sign[i] = sign
		hv.val[i] = f.Value
	}
	return hv
}

// Dot is DotVector over the pre-resolved slots.
func (hv *HashedVector) Dot(w []float64) float64 {
	var y float64
	for i, d := range hv.idx {
		y += w[d] * hv.sign[i] * hv.val[i]
	}
	return y
}

// AddTo is HashInto over the pre-resolved slots.
func (hv *HashedVector) AddTo(x []float64) {
	for i, d := range hv.idx {
		x[d] += hv.sign[i] * hv.val[i]
	}
}

// PredictSparse evaluates h on a hashed base and the sparse vector it was
// hashed from: the linear term runs over the vector's entries, the stumps
// over the dense base. Equivalent to Predict(base) up to float summation
// order.
func (h *HeadModel) PredictSparse(base []float64, v Vector) float64 {
	return h.predictStumps(base, DotVector(h.Weights, v))
}

// PredictHashed is PredictSparse with the vector's slots pre-resolved —
// bit-identical to PredictSparse(base, v) for hv = NewHashedVector(v).
func (h *HeadModel) PredictHashed(base []float64, hv *HashedVector) float64 {
	return h.predictStumps(base, hv.Dot(h.Weights))
}

func (h *HeadModel) predictStumps(base []float64, y float64) float64 {
	for si := range h.Stumps {
		s := &h.Stumps[si]
		if base[s.Dim] <= s.Threshold {
			y += s.Left
		} else {
			y += s.Right
		}
	}
	return y
}
