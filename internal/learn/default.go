package learn

import (
	"bytes"
	_ "embed"
	"sync"
)

// defaultModelBytes is the checked-in production model, regenerated with
// `make corpus && make train` (see docs/EXTENDING.md §11).
//
//go:embed models/default.json
var defaultModelBytes []byte

var (
	defaultOnce  sync.Once
	defaultModel *Model
	defaultErr   error
)

// DefaultModel parses the embedded default model once and returns the
// shared instance. The model is read-only after load, so the instance is
// safe for concurrent Predict calls.
func DefaultModel() (*Model, error) {
	defaultOnce.Do(func() {
		defaultModel, defaultErr = ReadModel(bytes.NewReader(defaultModelBytes))
	})
	return defaultModel, defaultErr
}
