package learn

// Dim is the hashed feature-space dimensionality. Feature names are
// FNV-1a-hashed into [0, Dim) with a sign bit, the standard hashing trick:
// the model never needs a vocabulary file, and unseen feature names (new
// policies, new topology kinds) degrade gracefully instead of erroring.
const Dim = 256

// fnv1a is the 64-bit FNV-1a hash of s (inlined rather than hash/fnv so
// the serving path allocates nothing).
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// slot returns the hashed index and sign for a feature name. The sign bit
// (bit 63, independent of the index bits) debiases collisions: two names
// landing in the same slot cancel in expectation instead of always adding.
func slot(name string) (idx int, sign float64) {
	h := fnv1a(name)
	idx = int(h % Dim)
	if h>>63 == 1 {
		return idx, -1
	}
	return idx, 1
}

// HashInto accumulates v into the dense vector x (len Dim). Callers zero
// or pre-fill x; Learned.Run hashes the scenario vector once and copies it
// as the base for every per-job vector.
func HashInto(x []float64, v Vector) {
	for _, f := range v {
		idx, sign := slot(f.Name)
		x[idx] += sign * f.Value
	}
}
