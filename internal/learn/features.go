package learn

import (
	"math"
	"sync"

	"mltcp/internal/config"
	"mltcp/internal/core"
	"mltcp/internal/place"
	"mltcp/internal/workload"
)

// policyNames are the policy-scoped feature names. They are pure
// functions of the policy string, and Extract sits on the learned
// backend's serving hot path, so they are interned per policy instead of
// re-concatenated on every extraction.
type policyNames struct {
	policy, load, excess, serial, a string
}

var policyNameCache sync.Map // policy string → *policyNames

func namesFor(policy string) *policyNames {
	if v, ok := policyNameCache.Load(policy); ok {
		return v.(*policyNames)
	}
	pn := &policyNames{
		policy: "p=" + policy,
		load:   "p=" + policy + ":load",
		excess: "p=" + policy + ":excess",
		serial: "p=" + policy + ":serial",
		a:      "p=" + policy + ":a",
	}
	policyNameCache.Store(policy, pn)
	return pn
}

// Features is the model input for one scenario: a scenario-level vector
// shared by every job, plus one per-job vector. At prediction time job i's
// input is the concatenation Scenario ++ Jobs[i]; scenario-level heads
// (overlap, interleave point) see only Scenario.
type Features struct {
	Scenario Vector
	Jobs     []Vector
}

// Extract computes the feature vectors for a normalized scenario. specs
// must be s.Specs() and cl the scenario's compiled placement (nil for
// dumbbell scenarios); the caller expands/compiles once so serving pays
// the cost a single time per Run. Extraction is a pure function of its
// arguments.
func Extract(s *config.Scenario, specs []workload.Spec, cl *place.Cluster) *Features {
	n := len(specs)
	capacity := s.Capacity()
	horizon := s.DurationSec

	// Per-job isolated geometry at each job's own bottleneck capacity.
	// All scratch arrays carve one allocation.
	scratch := make([]float64, 7*n)
	a := scratch[0*n : 1*n]     // comm fraction in isolation
	ideal := scratch[1*n : 2*n] // isolated iteration time, seconds
	start := scratch[2*n : 3*n] // active-window start, seconds
	end := scratch[3*n : 4*n]   // active-window end, seconds
	for i, sp := range specs {
		ci := cl.IdealCap(i, capacity)
		a[i] = sp.Profile.CommFraction(ci)
		ideal[i] = sp.Profile.IdealIterTime(ci).Seconds()
		start[i] = sp.StartOffset.Seconds()
		e := horizon
		if sp.MaxIterations > 0 && ideal[i] > 0 {
			if be := start[i] + float64(sp.MaxIterations)*ideal[i]; be < e {
				e = be
			}
		}
		if e < start[i] {
			e = start[i]
		}
		end[i] = e
	}

	// Link-sharing structure: without a topology every pair contends for
	// the one bottleneck; with one, pairs contend iff their paths share a
	// link. Paths become per-job bitsets so the O(n²) pair sweep is a few
	// word ANDs per pair.
	var linkBits [][]uint64
	words := 0
	if cl != nil {
		maxLink := 0
		for _, path := range cl.Paths {
			for _, l := range path {
				if l > maxLink {
					maxLink = l
				}
			}
		}
		words = maxLink/64 + 1
		buf := make([]uint64, words*n)
		linkBits = make([][]uint64, n)
		for i, path := range cl.Paths {
			b := buf[i*words : (i+1)*words]
			for _, l := range path {
				b[l/64] |= 1 << (l % 64)
			}
			linkBits[i] = b
		}
	}
	shares := func(i, k int) bool {
		if linkBits == nil {
			return true
		}
		bi, bk := linkBits[i], linkBits[k]
		for w := 0; w < words; w++ {
			if bi[w]&bk[w] != 0 {
				return true
			}
		}
		return false
	}

	// Co-presence-weighted contention: w_ik is the fraction of job i's
	// active window during which contender k is also active, so briefly
	// overlapping jobs in a trace-driven cluster contribute only their
	// temporal share of demand.
	load := scratch[4*n : 5*n]       // a_i + Σ w_ik·a_k over link-sharing k
	serial := scratch[5*n : 6*n]     // 1 + Σ w_ik·a_k: serialized-comm slowdown bound
	contenders := scratch[6*n : 7*n] // count of co-present link-sharing jobs
	for i := 0; i < n; i++ {
		wi := end[i] - start[i]
		load[i] = a[i]
		serial[i] = 1
		for k := 0; k < n; k++ {
			if k == i || !shares(i, k) {
				continue
			}
			ov := math.Min(end[i], end[k]) - math.Max(start[i], start[k])
			if ov <= 0 || wi <= 0 {
				continue
			}
			w := ov / wi
			load[i] += w * a[k]
			serial[i] += w * a[k]
			contenders[i]++
		}
	}

	pn := namesFor(s.Policy)
	f := &Features{Jobs: make([]Vector, n)}
	f.Scenario = scenarioVector(s, specs, cl, pn, a, load, start, end, contenders)
	// All job vectors carve one backing allocation; JobLayout relies on
	// every vector sharing this exact feature order.
	const jobFeatures = 17
	jbuf := make([]Feature, 0, jobFeatures*n)
	for i := range specs {
		excess := math.Max(0, load[i]-1)
		winFrac := 0.0
		if horizon > 0 {
			winFrac = (end[i] - start[i]) / horizon
		}
		offFrac := 0.0
		if horizon > 0 {
			offFrac = start[i] / horizon
		}
		noiseRel := 0.0
		if ideal[i] > 0 {
			noiseRel = specs[i].NoiseStd.Seconds() / ideal[i]
		}
		hasBudget := 0.0
		if specs[i].MaxIterations > 0 {
			hasBudget = 1
		}
		at := len(jbuf)
		jbuf = append(jbuf,
			Feature{"j:a", a[i]},
			Feature{"j:a_sq", a[i] * a[i]},
			Feature{"j:ideal_s", ideal[i]},
			Feature{"j:compute_s", specs[i].Profile.ComputeTime.Seconds()},
			Feature{"j:bytes_gb", float64(specs[i].Profile.CommBytes) / 1e9},
			Feature{"j:offset_frac", offFrac},
			Feature{"j:noise_rel", noiseRel},
			Feature{"j:has_budget", hasBudget},
			Feature{"j:window_frac", winFrac},
			Feature{"j:contenders", contenders[i]},
			Feature{"j:load", load[i]},
			Feature{"j:excess", excess},
			Feature{"j:serial", serial[i]},
			// Policy conjunctions: a hashed linear model cannot represent
			// policy×contention interactions natively, so the load terms are
			// re-emitted under policy-scoped names.
			Feature{pn.load, load[i]},
			Feature{pn.excess, excess},
			Feature{pn.serial, serial[i]},
			Feature{pn.a, a[i]},
		)
		f.Jobs[i] = Vector(jbuf[at:len(jbuf):len(jbuf)])
	}
	return f
}

func scenarioVector(s *config.Scenario, specs []workload.Spec, cl *place.Cluster,
	pn *policyNames, a, load, start, end, contenders []float64) Vector {
	n := len(specs)
	sumA, maxA, sumLoad, maxExcess, sumWin, sumCont := 0.0, 0.0, 0.0, 0.0, 0.0, 0.0
	minStart, maxStart := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		sumA += a[i]
		if a[i] > maxA {
			maxA = a[i]
		}
		sumLoad += load[i]
		if ex := load[i] - 1; ex > maxExcess {
			maxExcess = ex
		}
		if s.DurationSec > 0 {
			sumWin += (end[i] - start[i]) / s.DurationSec
		}
		sumCont += contenders[i]
		if start[i] < minStart {
			minStart = start[i]
		}
		if start[i] > maxStart {
			maxStart = start[i]
		}
	}
	inv := 1.0 / float64(n)
	spread := 0.0
	if n > 1 && s.DurationSec > 0 {
		spread = (maxStart - minStart) / s.DurationSec
	}
	slope, intercept := 0.0, 0.0
	mltcpFlag := 0.0
	if _, mltcp, ok := s.CC(); ok && mltcp {
		mltcpFlag = 1
		slope, intercept = core.DefaultSlope, core.DefaultIntercept
		if s.SlopeIntercept != nil {
			slope, intercept = s.SlopeIntercept[0], s.SlopeIntercept[1]
		}
	}
	centralized := 0.0
	if s.Centralized() {
		centralized = 1
	}
	v := Vector{
		{"bias", 1},
		{"njobs", float64(n)},
		{"log_njobs", math.Log1p(float64(n))},
		{"cap_rel", s.CapacityGbps / 50},
		{"log_dur", math.Log1p(s.DurationSec)},
		{"stagger_ms", s.Stagger().Seconds() * 1000},
		{pn.policy, 1},
		{"mltcp", mltcpFlag},
		{"mltcp_slope", mltcpFlag * slope},
		{"mltcp_intercept", mltcpFlag * intercept},
		{"centralized", centralized},
		{"sum_a", sumA},
		{"mean_a", sumA * inv},
		{"max_a", maxA},
		{"mean_load", sumLoad * inv},
		{"max_excess", math.Max(0, maxExcess)},
		{"mean_window", sumWin * inv},
		{"mean_contenders", sumCont * inv},
		{"start_spread", spread},
	}
	if cl != nil {
		pathLen := 0.0
		for _, p := range cl.Paths {
			pathLen += float64(len(p))
		}
		v = append(v,
			Feature{"topo=" + s.Topology.Kind, 1},
			Feature{"racks", float64(cl.Fab.Racks())},
			Feature{"oversub", cl.Fab.Oversubscription()},
			Feature{"mean_path_len", pathLen * inv},
		)
	}
	return v
}
