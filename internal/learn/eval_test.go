package learn

import (
	"math"
	"testing"

	"mltcp/internal/config"
	"mltcp/internal/place"
)

// extractFor normalizes a scenario and runs the full serving-path
// extraction: Specs, placement compilation, Extract.
func extractFor(t *testing.T, scn *config.Scenario) *Features {
	t.Helper()
	if err := scn.Normalize(); err != nil {
		t.Fatal(err)
	}
	specs := scn.Specs()
	cl := place.Compile(scn, specs, 1)
	return Extract(scn, specs, cl)
}

// evalScenarios cover both extraction regimes: a dumbbell mix and a
// fat-tree topology scenario.
func evalScenarios() []*config.Scenario {
	return []*config.Scenario{
		{
			Name: "eval-dumbbell", Policy: "mltcp", DurationSec: 30,
			Jobs: []config.Job{
				{Name: "J1", Profile: "gpt2"},
				{Name: "J2", Profile: "gpt3"},
				{Name: "J3", Profile: "bert"},
			},
		},
		{
			Name: "eval-fattree", Policy: "reno", DurationSec: 20,
			Topology: &config.Topology{Kind: config.KindFatTree, K: 4},
			Jobs: []config.Job{
				{Name: "A", Profile: "gpt2", Count: 4},
				{Name: "B", Profile: "bert", Count: 2},
			},
		},
	}
}

// TestJobEvalMatchesDensePredict is the fast-path correctness guarantee:
// the layout-cached sparse evaluation must agree with the dense
// copy-base-hash-and-Predict path on every head and job, within float
// reassociation tolerance (the two paths sum in different orders, so
// bitwise equality is not the contract).
func TestJobEvalMatchesDensePredict(t *testing.T) {
	m, err := DefaultModel()
	if err != nil {
		t.Fatal(err)
	}
	h := m.Head(HeadSlowdown)
	if h == nil {
		t.Fatal("default model has no slowdown head")
	}
	const tol = 1e-9
	for _, scn := range evalScenarios() {
		f := extractFor(t, scn)
		base := make([]float64, Dim)
		HashInto(base, f.Scenario)
		ev := NewJobEval(h, base, f.Scenario, f.Jobs[0])
		for i, jv := range f.Jobs {
			x := make([]float64, Dim)
			copy(x, base)
			HashInto(x, jv)
			dense := h.Predict(x)
			if fast := ev.Predict(jv); math.Abs(fast-dense) > tol {
				t.Errorf("%s job %d: fast %v dense %v (|Δ|=%g)",
					scn.Name, i, fast, dense, math.Abs(fast-dense))
			}
		}
	}
}

// TestJobEvalFallbackOnLayoutMismatch: a vector that does not match the
// prototype layout must degrade to the dense path, not mis-predict.
func TestJobEvalFallbackOnLayoutMismatch(t *testing.T) {
	m, err := DefaultModel()
	if err != nil {
		t.Fatal(err)
	}
	h := m.Head(HeadSlowdown)
	f := extractFor(t, evalScenarios()[0])
	base := make([]float64, Dim)
	HashInto(base, f.Scenario)
	ev := NewJobEval(h, base, f.Scenario, f.Jobs[0])

	short := f.Jobs[1][:len(f.Jobs[1])-2] // drop trailing features: layout mismatch
	x := make([]float64, Dim)
	copy(x, base)
	HashInto(x, short)
	if got, want := ev.Predict(short), h.Predict(x); got != want {
		t.Fatalf("fallback predict %v, dense %v", got, want)
	}
}

// TestPredictSparseMatchesDense: the scenario-head serving path
// (DotVector over the sparse vector + stumps on the dense base) must
// agree with the dense Predict on the hashed image.
func TestPredictSparseMatchesDense(t *testing.T) {
	m, err := DefaultModel()
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	for _, scn := range evalScenarios() {
		f := extractFor(t, scn)
		base := make([]float64, Dim)
		HashInto(base, f.Scenario)
		for i := range m.Heads {
			h := &m.Heads[i]
			dense := h.Predict(base)
			if sparse := h.PredictSparse(base, f.Scenario); math.Abs(sparse-dense) > tol {
				t.Errorf("%s head %s: sparse %v dense %v", scn.Name, h.Name, sparse, dense)
			}
		}
	}
}

// TestHashedVectorBitIdentical: the pre-resolved-slot serving path is
// contractually bit-identical to the name-hashing path — Dot vs
// DotVector, AddTo vs HashInto, PredictHashed vs PredictSparse, and
// EvalHashed vs Eval preserve the exact operation order, so the learned
// backend switching to HashedVector changes no prediction bit.
func TestHashedVectorBitIdentical(t *testing.T) {
	m, err := DefaultModel()
	if err != nil {
		t.Fatal(err)
	}
	for _, scn := range evalScenarios() {
		f := extractFor(t, scn)
		hv := NewHashedVector(f.Scenario)

		base := make([]float64, Dim)
		HashInto(base, f.Scenario)
		viaHV := make([]float64, Dim)
		hv.AddTo(viaHV)
		for d := range base {
			if base[d] != viaHV[d] {
				t.Fatalf("%s: AddTo dim %d: %v != %v", scn.Name, d, viaHV[d], base[d])
			}
		}

		for i := range m.Heads {
			h := &m.Heads[i]
			if got, want := hv.Dot(h.Weights), DotVector(h.Weights, f.Scenario); got != want {
				t.Errorf("%s head %s: Dot %v != DotVector %v", scn.Name, h.Name, got, want)
			}
			if got, want := h.PredictHashed(base, hv), h.PredictSparse(base, f.Scenario); got != want {
				t.Errorf("%s head %s: PredictHashed %v != PredictSparse %v",
					scn.Name, h.Name, got, want)
			}
		}

		sh := m.Head(HeadSlowdown)
		layout := NewJobLayout(sh, f.Jobs[0])
		evSparse := layout.Eval(base, f.Scenario)
		evHashed := layout.EvalHashed(base, hv)
		for i, jv := range f.Jobs {
			if got, want := evHashed.Predict(jv), evSparse.Predict(jv); got != want {
				t.Errorf("%s job %d: hashed-eval predict %v != sparse-eval %v",
					scn.Name, i, got, want)
			}
		}
	}
}

// TestDotVectorMatchesDenseDot pins the hashing linearity DotVector
// relies on: colliding names sum the same way in both representations.
func TestDotVectorMatchesDenseDot(t *testing.T) {
	v := Vector{
		{"bias", 1}, {"njobs", 3}, {"j:a", 0.25}, {"p=mltcp:load", 1.5},
		{"bias", 2}, // duplicate name: accumulates
	}
	x := make([]float64, Dim)
	HashInto(x, v)
	w := make([]float64, Dim)
	for i := range w {
		w[i] = float64(i%13) * 0.1
	}
	var dense float64
	for i, wi := range w {
		dense += wi * x[i]
	}
	if got := DotVector(w, v); math.Abs(got-dense) > 1e-12 {
		t.Fatalf("DotVector %v, dense dot %v", got, dense)
	}
}
