package learn

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// CorpusSchema versions the corpus JSONL format.
const CorpusSchema = 1

// CorpusHeader is the first line of a corpus file.
type CorpusHeader struct {
	Kind    string `json:"kind"` // always "corpus"
	Schema  int    `json:"schema"`
	Grid    string `json:"grid"`    // generating grid name ("quick", "full")
	Backend string `json:"backend"` // backend the targets came from
	Seed    uint64 `json:"seed"`    // harness base seed
	Runs    int    `json:"runs"`
}

// CorpusJob is one job's training example within a run: its feature map
// and observed steady-state slowdown (at SteadySkip) from the simulator.
type CorpusJob struct {
	F        map[string]float64 `json:"f"`
	Slowdown float64            `json:"slowdown"`
}

// CorpusRun is one scenario execution: scenario-level features plus every
// target the model's heads train on. Feature maps serialize with sorted
// keys (encoding/json sorts map keys), so corpus bytes are deterministic.
type CorpusRun struct {
	Scenario        string             `json:"scenario"`
	Seed            uint64             `json:"seed"`
	Scn             map[string]float64 `json:"scn"`
	Jobs            []CorpusJob        `json:"jobs"`
	Overlap         float64            `json:"overlap"`
	InterleaveFrac  float64            `json:"interleave_frac"`
	Topology        bool               `json:"topology,omitempty"`
	SharedOverlap   float64            `json:"shared_overlap,omitempty"`
	DisjointOverlap float64            `json:"disjoint_overlap,omitempty"`
	OverlapQ        []float64          `json:"overlap_q,omitempty"`
}

// Map converts an ordered feature vector to the corpus map form,
// accumulating duplicate names.
func (v Vector) Map() map[string]float64 {
	m := make(map[string]float64, len(v))
	for _, f := range v {
		m[f.Name] += f.Value
	}
	return m
}

// HashMapInto accumulates a corpus feature map into a dense vector of
// length Dim. Keys are visited in sorted order so colliding slots sum in
// one canonical order — training sees the exact floats serving computes.
func HashMapInto(x []float64, f map[string]float64) {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idx, sign := slot(k)
		x[idx] += sign * f[k]
	}
}

// WriteCorpus writes a header line and one JSON line per run.
func WriteCorpus(w io.Writer, h CorpusHeader, runs []CorpusRun) error {
	h.Kind = "corpus"
	h.Schema = CorpusSchema
	h.Runs = len(runs)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("learn: write corpus header: %w", err)
	}
	for i := range runs {
		if err := enc.Encode(&runs[i]); err != nil {
			return fmt.Errorf("learn: write corpus run %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadCorpus parses a corpus file.
func ReadCorpus(r io.Reader) (CorpusHeader, []CorpusRun, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return CorpusHeader{}, nil, fmt.Errorf("learn: empty corpus")
	}
	var h CorpusHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return CorpusHeader{}, nil, fmt.Errorf("learn: corpus header: %w", err)
	}
	if h.Kind != "corpus" || h.Schema != CorpusSchema {
		return CorpusHeader{}, nil, fmt.Errorf("learn: corpus kind %q schema %d, want corpus schema %d",
			h.Kind, h.Schema, CorpusSchema)
	}
	var runs []CorpusRun
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var cr CorpusRun
		if err := json.Unmarshal(sc.Bytes(), &cr); err != nil {
			return CorpusHeader{}, nil, fmt.Errorf("learn: corpus run %d: %w", len(runs), err)
		}
		runs = append(runs, cr)
	}
	if err := sc.Err(); err != nil {
		return CorpusHeader{}, nil, fmt.Errorf("learn: read corpus: %w", err)
	}
	return h, runs, nil
}
