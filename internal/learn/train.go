package learn

import (
	"fmt"
	"math"
	"sort"

	"mltcp/internal/sim"
)

// Example is one training pair: a dense hashed input and its target.
type Example struct {
	X []float64
	Y float64
}

// TrainOpts tunes training. The zero value selects defaults.
type TrainOpts struct {
	// Seed drives every random choice (stump tie-breaking, per-round
	// feature subsampling) through SplitMix64-derived streams; training is
	// a pure function of (corpus, opts).
	Seed uint64
	// Lambda is the ridge regularization strength (default 3).
	Lambda float64
	// Rounds is the number of boosted stumps fit for the per-job slowdown
	// head (default 200). Scenario-level heads cap at scenarioRounds: they
	// see one example per run rather than one per job, and they are served
	// on every Run, so both overfit and serving cost argue for shallower
	// ensembles.
	Rounds int
	// Shrink is the boosting shrinkage (default 0.15).
	Shrink float64
	// DimFrac is the fraction of feature dimensions considered per
	// boosting round (default 0.7).
	DimFrac float64
}

func (o TrainOpts) withDefaults() TrainOpts {
	if o.Lambda == 0 {
		o.Lambda = 3
	}
	if o.Rounds == 0 {
		o.Rounds = 200
	}
	if o.Shrink == 0 {
		o.Shrink = 0.15
	}
	if o.DimFrac == 0 {
		o.DimFrac = 0.7
	}
	return o
}

// ExamplesFromCorpus converts corpus runs into per-head training sets.
// Jobs the simulator observed at zero slowdown (never completed an
// iteration inside the horizon) are excluded from the slowdown head: the
// serving path reproduces them geometrically, so the model only learns
// contention of jobs that actually ran.
func ExamplesFromCorpus(runs []CorpusRun) map[string][]Example {
	out := make(map[string][]Example)
	add := func(head string, x []float64, y float64) {
		out[head] = append(out[head], Example{X: x, Y: y})
	}
	for _, run := range runs {
		base := make([]float64, Dim)
		HashMapInto(base, run.Scn)
		for _, j := range run.Jobs {
			if j.Slowdown <= 0 {
				continue
			}
			x := make([]float64, Dim)
			copy(x, base)
			HashMapInto(x, j.F)
			add(HeadSlowdown, x, j.Slowdown)
		}
		add(HeadOverlap, base, run.Overlap)
		add(HeadInterleave, base, run.InterleaveFrac)
		if run.Topology {
			add(HeadSharedOverlap, base, run.SharedOverlap)
			add(HeadDisjointLoad, base, run.DisjointOverlap)
		}
		if len(run.OverlapQ) == 4 {
			for q, head := range []string{HeadOverlapQ1, HeadOverlapQ2, HeadOverlapQ3, HeadOverlapQ4} {
				add(head, base, run.OverlapQ[q])
			}
		}
	}
	return out
}

// Train fits one head per target present in the corpus: a ridge
// regression base plus boosted stumps on its residuals. The result is
// deterministic — equal (runs, opts) yield byte-identical encoded models.
func Train(h CorpusHeader, runs []CorpusRun, opts TrainOpts) *Model {
	opts = opts.withDefaults()
	sets := ExamplesFromCorpus(runs)
	names := make([]string, 0, len(sets))
	for name := range sets {
		names = append(names, name)
	}
	sort.Strings(names)
	m := &Model{
		Schema: ModelSchema,
		Dim:    Dim,
		Seed:   opts.Seed,
		Corpus: fmt.Sprintf("%s/%s: %d runs", h.Grid, h.Backend, h.Runs),
	}
	for hi, name := range names {
		headSeed := sim.DeriveSeed(opts.Seed, uint64(hi))
		m.Heads = append(m.Heads, trainHead(name, sets[name], opts, headSeed))
	}
	return m
}

// scenarioRounds bounds boosting depth for scenario-level heads.
const scenarioRounds = 64

func trainHead(name string, ex []Example, opts TrainOpts, seed uint64) HeadModel {
	if name != HeadSlowdown && opts.Rounds > scenarioRounds {
		opts.Rounds = scenarioRounds
	}
	head := HeadModel{Name: name, Weights: ridge(ex, opts.Lambda)}
	if len(ex) < 8 {
		return head
	}
	// Residual boosting with decision stumps.
	res := make([]float64, len(ex))
	for e := range ex {
		res[e] = ex[e].Y - head.Predict(ex[e].X)
	}
	// Presort example indices per dimension once; splits scan each dim in
	// O(n) with running sums. Dims unused by every example are skipped.
	var dims []int
	order := make([][]int, Dim)
	for d := 0; d < Dim; d++ {
		used := false
		for e := range ex {
			if ex[e].X[d] != 0 {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		idx := make([]int, len(ex))
		for e := range idx {
			idx[e] = e
		}
		d := d
		sort.SliceStable(idx, func(a, b int) bool { return ex[idx[a]].X[d] < ex[idx[b]].X[d] })
		order[d] = idx
		dims = append(dims, d)
	}
	for round := 0; round < opts.Rounds; round++ {
		rng := sim.NewRNGAt(seed, uint64(round))
		total := 0.0
		for _, r := range res {
			total += r
		}
		noSplit := total * total / float64(len(ex))
		best := Stump{Dim: -1}
		bestGain, bestPrio := noSplit, uint64(0)
		for _, d := range dims {
			include := rng.Float64() < opts.DimFrac
			prio := rng.Uint64()
			if !include {
				continue
			}
			idx := order[d]
			ls, ln := 0.0, 0
			for p := 0; p < len(idx)-1; p++ {
				ls += res[idx[p]]
				ln++
				lv, rv := ex[idx[p]].X[d], ex[idx[p+1]].X[d]
				if lv == rv { //lint:allow simunits equal feature values cannot host a split boundary; this partitions identical inputs, not scores
					continue
				}
				rs, rn := total-ls, len(idx)-ln
				gain := ls*ls/float64(ln) + rs*rs/float64(rn)
				if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && prio > bestPrio) {
					bestGain, bestPrio = gain, prio
					best = Stump{
						Dim:       d,
						Threshold: lv + (rv-lv)/2,
						Left:      opts.Shrink * ls / float64(ln),
						Right:     opts.Shrink * rs / float64(rn),
					}
				}
			}
		}
		if best.Dim < 0 || bestGain <= noSplit+1e-9 {
			break
		}
		head.Stumps = append(head.Stumps, best)
		for e := range ex {
			if ex[e].X[best.Dim] <= best.Threshold {
				res[e] -= best.Left
			} else {
				res[e] -= best.Right
			}
		}
	}
	return head
}

// ridge solves (XᵀX + λI)w = Xᵀy by Cholesky factorization, accumulating
// the normal equations in corpus order so the floats are reproducible.
func ridge(ex []Example, lambda float64) []float64 {
	a := make([]float64, Dim*Dim)
	b := make([]float64, Dim)
	for _, e := range ex {
		for i := 0; i < Dim; i++ {
			xi := e.X[i]
			if xi == 0 {
				continue
			}
			b[i] += xi * e.Y
			row := a[i*Dim : (i+1)*Dim]
			for j, xj := range e.X {
				if xj != 0 {
					row[j] += xi * xj
				}
			}
		}
	}
	for i := 0; i < Dim; i++ {
		a[i*Dim+i] += lambda
	}
	return cholSolve(a, b)
}

// cholSolve solves Aw = b for symmetric positive-definite A (n = Dim).
func cholSolve(a, b []float64) []float64 {
	const n = Dim
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum < 1e-12 {
					sum = 1e-12
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * y[k]
		}
		y[i] = s / l[i*n+i]
	}
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * w[k]
		}
		w[i] = s / l[i*n+i]
	}
	return w
}
