package telemetry

import (
	"fmt"
	"sort"
)

// Registry is a create-on-demand metrics registry: counters, gauges, and
// fixed-bucket histograms keyed by name. Like the simulation engine, a
// Registry is owned by one run (one goroutine) and needs no locking;
// exports are deterministic because names are emitted sorted.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (g *Registry) Gauge(name string) *Gauge {
	v, ok := g.gauges[name]
	if !ok {
		v = &Gauge{}
		g.gauges[name] = v
	}
	return v
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (bounds must be strictly increasing;
// they are ignored on later calls for the same name).
// The bounds panic formats through an always-panicking helper so the
// steady-state lookup stays allocation-free: Histogram is reached from
// //hot fluid code via Recorder.IterEnd, and the fact layer exempts
// functions that panic on every path.
func (g *Registry) Histogram(name string, bounds []float64) *Histogram {
	h, ok := g.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panicBadBounds(name)
			}
		}
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		g.hists[name] = h
	}
	return h
}

func panicBadBounds(name string) {
	panic(fmt.Sprintf("telemetry: histogram %q bounds not increasing", name))
}

// Counter is a monotonically increasing int64.
type Counter struct{ v int64 }

// Add increases the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decrement")
	}
	c.v += n
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a last-value-wins float64.
type Gauge struct{ v float64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the last set value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets: counts[i] holds
// observations <= bounds[i] (and above bounds[i-1]); the final count is
// the overflow bucket.
type Histogram struct {
	bounds []float64
	counts []int64
	count  int64
	sum    float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns the per-bucket counts (len(Bounds())+1 with the
// overflow bucket last).
func (h *Histogram) Counts() []int64 { return h.counts }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Default bucket bounds for the auto-registered histograms.
var (
	// DefaultQueueBuckets covers queue occupancies from one MTU to a
	// deep buffer, in bytes.
	DefaultQueueBuckets = []float64{0, 1500, 7500, 15000, 37500, 75000, 150000, 375000, 750000, 1.5e6}
	// DefaultDurationBuckets covers phase durations from sub-millisecond
	// to minutes, in seconds.
	DefaultDurationBuckets = []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
)

// HistSnapshot is a histogram's exported form.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a registry's exported form. encoding/json emits map keys
// sorted, so serializations are deterministic.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every metric's current value.
func (g *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if len(g.counters) > 0 {
		s.Counters = make(map[string]int64, len(g.counters))
		for n, c := range g.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(g.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(g.gauges))
		for n, v := range g.gauges {
			s.Gauges[n] = v.Value()
		}
	}
	if len(g.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(g.hists))
		for n, h := range g.hists {
			s.Histograms[n] = HistSnapshot{
				Bounds: h.bounds, Counts: h.counts, Count: h.count, Sum: h.sum,
			}
		}
	}
	return s
}

// Names returns every registered metric name, sorted, for deterministic
// iteration in reports.
func (g *Registry) Names() []string {
	var names []string
	for n := range g.counters {
		names = append(names, n)
	}
	for n := range g.gauges {
		names = append(names, n)
	}
	for n := range g.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
