package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mltcp/internal/sim"
)

func TestNilRecorderIsSafeAndDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Registry() != nil || r.Manifest() != nil {
		t.Fatal("nil recorder returned non-nil registry or manifest")
	}
	// Every emit method must be a no-op, not a panic.
	r.Emit(Event{})
	r.CwndUpdate(0, 1, 10, 20, sim.Millisecond)
	r.Retransmit(0, 1, 42)
	r.RTOFired(0, 1, sim.Second, 1)
	r.FastRecovery(0, 1, 5, 10)
	r.AggEval(0, 1, 0.5, 0.7)
	r.QueueSample(0, "l", 100, 2)
	r.Drop(0, "l", 1, 100)
	r.ECNMark(0, "l", 1, 100)
	r.IterStart(0, 1, 0)
	r.IterEnd(0, 1, 0, sim.Second)
	r.Bandwidth(0, 1, sim.Second, 1000)
	r.SetManifest(&Manifest{})
}

func TestNewPanicsOnNilSink(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil, ...) did not panic")
		}
	}()
	New(nil, Options{})
}

func TestRateLimitingPerKindAndFlow(t *testing.T) {
	rec, buf, _ := NewBuffered(Options{SampleEvery: 100 * sim.Millisecond})
	rec.CwndUpdate(0, 1, 1, 0, 0)                   // first always passes
	rec.CwndUpdate(50*sim.Millisecond, 1, 2, 0, 0)  // too dense, dropped
	rec.CwndUpdate(100*sim.Millisecond, 1, 3, 0, 0) // due
	rec.CwndUpdate(40*sim.Millisecond, 2, 4, 0, 0)  // other flow: first passes
	rec.AggEval(60*sim.Millisecond, 1, 0.1, 0.3)    // other kind: first passes
	rec.Retransmit(70*sim.Millisecond, 1, 9)        // not rate limited
	rec.Retransmit(71*sim.Millisecond, 1, 10)       // not rate limited
	want := []float64{1, 3, 4}
	var got []float64
	retx := 0
	for _, e := range buf.Events() {
		switch e.Kind {
		case KindCwnd:
			got = append(got, e.V0)
		case KindRetransmit:
			retx++
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cwnd samples %v, want %v", got, want)
	}
	if retx != 2 {
		t.Fatalf("retransmits rate-limited: got %d events, want 2", retx)
	}
}

func TestNegativeSampleEveryDisablesLimit(t *testing.T) {
	rec, buf, _ := NewBuffered(Options{SampleEvery: -1})
	for i := 0; i < 5; i++ {
		rec.CwndUpdate(sim.Time(i), 1, float64(i), 0, 0)
	}
	if buf.Len() != 5 {
		t.Fatalf("got %d events, want 5", buf.Len())
	}
}

func TestRecorderUpdatesRegistry(t *testing.T) {
	rec, _, reg := NewBuffered(Options{})
	rec.Retransmit(0, 1, 1)
	rec.Retransmit(0, 1, 2)
	rec.RTOFired(0, 1, sim.Second, 1)
	rec.FastRecovery(0, 1, 2, 4)
	rec.Drop(0, "l", 1, 10)
	rec.ECNMark(0, "l", 1, 10)
	rec.QueueSample(0, "l", 3000, 2)
	rec.IterEnd(0, 1, 0, 2*sim.Second)
	for name, want := range map[string]int64{
		"tcp.retransmits":     2,
		"tcp.timeouts":        1,
		"tcp.fast_recoveries": 1,
		"net.drops":           1,
		"net.ecn_marks":       1,
		"job.iterations":      1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h := reg.Histogram("net.queue_bytes", DefaultQueueBuckets)
	if h.Count() != 1 || h.Sum() != 3000 {
		t.Errorf("queue histogram count=%d sum=%v, want 1/3000", h.Count(), h.Sum())
	}
	d := reg.Histogram("job.comm_seconds", DefaultDurationBuckets)
	if d.Count() != 1 || d.Sum() != 2 {
		t.Errorf("duration histogram count=%d sum=%v, want 1/2", d.Count(), d.Sum())
	}
}

func TestHistogramBucketing(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// SearchFloat64s: counts[i] gets observations with v <= bounds[i].
	want := []int64{2, 1, 1, 1}
	if !reflect.DeepEqual(h.Counts(), want) {
		t.Fatalf("counts %v, want %v", h.Counts(), want)
	}
	if h.Mean() != 21.2 {
		t.Fatalf("mean %v, want 21.2", h.Mean())
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 1})
}

func TestBucketSeries(t *testing.T) {
	s := NewBucketSeries(10)
	s.Add(0, 1)
	s.Add(9, 2)
	s.Add(10, 5)
	s.Add(35, 7)
	if want := []int64{3, 5, 0, 7}; !reflect.DeepEqual(s.Buckets(), want) {
		t.Fatalf("buckets %v, want %v", s.Buckets(), want)
	}
	if s.Sum() != 15 {
		t.Fatalf("sum %d, want 15", s.Sum())
	}
	if s.Width() != 10 {
		t.Fatalf("width %v, want 10", s.Width())
	}
}

// allKindsEvents returns one event of every kind with distinctive values.
func allKindsEvents() []Event {
	return []Event{
		{At: 1, Kind: KindCwnd, Flow: 1, N: 2500000, V0: 12.5, V1: 64},
		{At: 2, Kind: KindRetransmit, Flow: 2, N: 1448},
		{At: 3, Kind: KindRTO, Flow: 1, N: 200000000, V0: 1},
		{At: 4, Kind: KindFastRecovery, Flow: 2, V0: 8, V1: 10},
		{At: 5, Kind: KindAgg, Flow: 1, V0: 0.25, V1: 0.625},
		{At: 6, Kind: KindQueue, Link: "bottleneck-fwd", N: 30000, M: 20},
		{At: 7, Kind: KindDrop, Link: "bottleneck-fwd", Flow: 1, N: 150000},
		{At: 8, Kind: KindECNMark, Link: "bottleneck-fwd", Flow: 2, N: 30000},
		{At: 9, Kind: KindIterStart, Flow: 1, N: 3},
		{At: 10, Kind: KindIterEnd, Flow: 1, N: 3, M: 400000000},
		{At: 11, Kind: KindBandwidth, Flow: 2, M: 50000000, V0: 1.25e6},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := &Manifest{
		Scenario: "rt", Backend: "packet", Policy: "mltcp", Seed: 7,
		CapacityGbps: 0.5, Scale: 0.01, DurationNS: int64(20 * sim.Second),
		Jobs: []ManifestJob{{Flow: 1, Name: "J1", Profile: "gpt2", IdealNS: 1800000000, BytesPerIter: 12500000}},
	}
	events := allKindsEvents()
	reg := NewRegistry()
	reg.Counter("tcp.retransmits").Add(3)
	reg.Gauge("x").Set(1.5)
	reg.Histogram("h", []float64{1, 2}).Observe(1.5)

	var buf bytes.Buffer
	if err := Write(&buf, m, events, reg); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantM := *m
	wantM.Kind = "manifest"
	wantM.Schema = SchemaVersion
	if !reflect.DeepEqual(tr.Manifest, &wantM) {
		t.Errorf("manifest round trip:\n got %+v\nwant %+v", tr.Manifest, &wantM)
	}
	if !reflect.DeepEqual(tr.Events, events) {
		t.Errorf("events round trip:\n got %+v\nwant %+v", tr.Events, events)
	}
	if tr.Metrics == nil || tr.Metrics.Counters["tcp.retransmits"] != 3 ||
		tr.Metrics.Gauges["x"] != 1.5 || tr.Metrics.Histograms["h"].Count != 1 {
		t.Errorf("metrics round trip: %+v", tr.Metrics)
	}
}

func TestWriteSortsStablyByTime(t *testing.T) {
	events := []Event{
		{At: 10, Kind: KindIterStart, Flow: 1, N: 0},
		{At: 5, Kind: KindQueue, Link: "l", N: 1},
		{At: 10, Kind: KindIterStart, Flow: 2, N: 0}, // tie: emission order kept
		{At: 1, Kind: KindRetransmit, Flow: 1, N: 7},
	}
	var buf bytes.Buffer
	if err := Write(&buf, nil, events, nil); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("got %d events", len(tr.Events))
	}
	order := []sim.Time{1, 5, 10, 10}
	for i, e := range tr.Events {
		if e.At != order[i] {
			t.Fatalf("event %d at %v, want %v", i, e.At, order[i])
		}
	}
	if tr.Events[2].Flow != 1 || tr.Events[3].Flow != 2 {
		t.Fatal("tied events reordered")
	}
	// Input slice must not be mutated by Write's sort.
	if events[0].At != 10 || events[3].At != 1 {
		t.Fatal("Write mutated its input slice")
	}
}

func TestReadRejectsUnknownKind(t *testing.T) {
	_, err := Read(strings.NewReader(`{"t":1,"kind":"nope"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown event kind") {
		t.Fatalf("err = %v, want unknown-kind error", err)
	}
}

func TestWriteByteIdentical(t *testing.T) {
	events := allKindsEvents()
	var a, b bytes.Buffer
	if err := Write(&a, nil, events, nil); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, nil, events, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two Writes of the same events differ")
	}
}

func TestKindStringCoversAllKinds(t *testing.T) {
	for k := KindCwnd; k <= KindBandwidth; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no wire name", k)
		}
		if kindByName[k.String()] != k {
			t.Fatalf("kind %d does not round-trip through its name", k)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	rec, _, _ := NewBuffered(Options{})
	ctx := WithRecorder(t.Context(), rec)
	if FromContext(ctx) != rec {
		t.Fatal("recorder lost in context")
	}
	if FromContext(t.Context()) != nil {
		t.Fatal("empty context returned a recorder")
	}
}
