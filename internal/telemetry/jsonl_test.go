package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mltcp/internal/sim"
)

// TestReadCorruptLineIsLineNumbered pins the reader's failure contract:
// a corrupt JSONL line (here, line 2) fails with its line number and a
// "corrupt or truncated" message instead of a garbled partial decode.
func TestReadCorruptLineIsLineNumbered(t *testing.T) {
	in := `{"t":1,"kind":"retx","flow":1,"seq":5}` + "\n" +
		`{"t":2,"kind":"retx","flow":1,` + "\n" + // corrupt: cut mid-object
		`{"t":3,"kind":"retx","flow":1,"seq":7}` + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("corrupt line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name line 2: %v", err)
	}
	if !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Errorf("error does not say corrupt/truncated: %v", err)
	}
}

// TestReadTruncatedFinalLine covers the mid-write truncation shape: the
// file's last line stops inside a JSON string.
func TestReadTruncatedFinalLine(t *testing.T) {
	in := `{"t":1,"kind":"retx","flow":1,"seq":5}` + "\n" +
		`{"t":2,"kind":"cw`
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("truncated final line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Errorf("truncation error = %v, want line-numbered corrupt/truncated", err)
	}
}

// TestReadRejectsSchemaMismatch: a manifest from another schema version
// must fail with both versions named, not half-decode.
func TestReadRejectsSchemaMismatch(t *testing.T) {
	in := `{"kind":"manifest","schema":99,"scenario":"x","backend":"fluid","policy":"mltcp","seed":1,"capacity_gbps":50,"scale":1,"duration_ns":1,"jobs":[]}` + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("schema v99 manifest accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "trace is v99") || !strings.Contains(msg, "reader supports v1") {
		t.Errorf("schema error = %v, want \"trace is v99, reader supports v1\"", err)
	}
	if !strings.Contains(msg, "line 1") {
		t.Errorf("schema error does not name the line: %v", err)
	}
}

// TestReadTrace covers the path-based entry point: success, decode
// errors annotated with the path, and missing files.
func TestReadTrace(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.jsonl")
	var buf bytes.Buffer
	if err := Write(&buf, nil, []Event{{At: 1, Kind: KindRetransmit, Flow: 1, N: 5}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("got %d events", len(tr.Events))
	}

	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bad); err == nil || !strings.Contains(err.Error(), "bad.jsonl") {
		t.Errorf("decode error not annotated with path: %v", err)
	}

	if _, err := ReadTrace(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestEncodeEventMatchesWrite: EncodeEvent must render exactly the line
// Write emits for the event.
func TestEncodeEventMatchesWrite(t *testing.T) {
	for _, e := range allKindsEvents() {
		line, err := EncodeEvent(e)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, nil, []Event{e}, nil); err != nil {
			t.Fatal(err)
		}
		want := strings.TrimSuffix(buf.String(), "\n")
		if line != want {
			t.Errorf("EncodeEvent(%v) = %q, Write emitted %q", e.Kind, line, want)
		}
	}
	if _, err := EncodeEvent(Event{Kind: Kind(200)}); err == nil {
		t.Error("unknown kind encoded")
	}
}

// TestEventFieldsMatchSchema: every field name Fields reports must appear
// in the event's wire encoding, with the identical value rendering.
func TestEventFieldsMatchSchema(t *testing.T) {
	for _, e := range allKindsEvents() {
		line, err := EncodeEvent(e)
		if err != nil {
			t.Fatal(err)
		}
		fields := e.Fields()
		if len(fields) == 0 {
			t.Fatalf("kind %v has no decoded fields", e.Kind)
		}
		for _, f := range fields {
			want := `"` + f.Name + `":` + f.Value
			if !strings.Contains(line, want) {
				t.Errorf("kind %v: field %s=%s not in wire line %s", e.Kind, f.Name, f.Value, line)
			}
		}
	}
	if fields := (Event{Kind: Kind(200)}).Fields(); fields != nil {
		t.Errorf("unknown kind decoded fields %v", fields)
	}
}

// TestFlushLimiterStats: the limiter's drop count lands in the registry
// under LimiterDropsMetric, and is present even at zero drops.
func TestFlushLimiterStats(t *testing.T) {
	rec, _, reg := NewBuffered(Options{SampleEvery: 10 * sim.Millisecond})
	rec.CwndUpdate(0, 1, 10, 5, sim.Millisecond)
	rec.CwndUpdate(sim.Millisecond, 1, 11, 5, sim.Millisecond) // dropped
	rec.CwndUpdate(2*sim.Millisecond, 1, 12, 5, sim.Millisecond) // dropped
	rec.FlushLimiterStats()
	if got := reg.Snapshot().Counters[LimiterDropsMetric]; got != 2 {
		t.Errorf("%s = %d, want 2", LimiterDropsMetric, got)
	}

	recZero, _, regZero := NewBuffered(Options{})
	recZero.FlushLimiterStats()
	if v, ok := regZero.Snapshot().Counters[LimiterDropsMetric]; !ok || v != 0 {
		t.Errorf("zero-drop flush: counter = %d (present %v), want 0 present", v, ok)
	}

	var nilRec *Recorder
	nilRec.FlushLimiterStats() // must not panic
}
