package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mltcp/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the schema golden file")

// TestSchemaGolden pins the JSONL wire format: the manifest field set, every
// event kind's name and payload fields, and the metrics line. A diff here
// means the trace schema changed — bump SchemaVersion and regenerate with
// `go test ./internal/telemetry -run TestSchemaGolden -update` only when the
// break is intentional (downstream trace consumers parse this format).
func TestSchemaGolden(t *testing.T) {
	m := &Manifest{
		Scenario: "golden", Backend: "packet", Policy: "mltcp", Seed: 1,
		CapacityGbps: 0.5, Scale: 0.01, DurationNS: int64(20 * sim.Second),
		Jobs: []ManifestJob{
			{Flow: 1, Name: "J1(gpt2)", Profile: "gpt2", IdealNS: 1800000000, BytesPerIter: 12500000},
			{Flow: 2, Name: "J2(gpt2)", Profile: "gpt2", IdealNS: 1800000000, BytesPerIter: 12500000},
		},
	}
	reg := NewRegistry()
	reg.Counter("tcp.retransmits").Add(2)
	reg.Counter("net.drops").Inc()
	reg.Gauge("example.gauge").Set(0.375)
	reg.Histogram("net.queue_bytes", []float64{1500, 15000}).Observe(3000)

	var buf bytes.Buffer
	if err := Write(&buf, m, allKindsEvents(), reg); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "schema.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace schema drifted from golden file.\n got:\n%s\nwant:\n%s\n"+
			"If intentional, bump SchemaVersion and rerun with -update.",
			buf.Bytes(), want)
	}
}
