// Package telemetry is the simulation stack's observability subsystem: a
// deterministic, allocation-conscious event bus plus a metrics registry.
//
// Components emit typed events — per-flow congestion-window updates,
// retransmissions, RTOs, fast-recovery entries, MLTCP aggressiveness
// evaluations, queue-depth/drop/ECN-mark samples, and training-iteration
// boundaries — through a *Recorder. A nil *Recorder is a valid, near-free
// no-op: every emit method has a nil-receiver fast path, so instrumented
// hot paths cost one inlinable nil check when telemetry is disabled.
//
// Determinism is a design requirement, not an accident: events carry
// simulated time only (nothing here reads the wall clock), recorders are
// owned by a single run (one goroutine, like the engine), and Write
// serializes traces with a stable sort and exact float formatting — so the
// same (scenario, seed) yields a byte-identical JSONL trace at any worker
// count. That property is what makes traces usable as training data for
// learned simulators and as golden run artifacts.
package telemetry

import (
	"context"

	"mltcp/internal/sim"
)

// Kind identifies an event type. The JSONL name of each kind (and its
// payload fields) is pinned by the schema golden test; adding a kind is
// backward compatible, renaming one is not.
type Kind uint8

const (
	// KindCwnd is a congestion-window sample taken on an ACK: V0=cwnd
	// (packets), V1=ssthresh, N=smoothed RTT in ns.
	KindCwnd Kind = iota + 1
	// KindRetransmit is one retransmitted segment: N=sequence number.
	KindRetransmit
	// KindRTO is a retransmission-timeout firing: N=the backed-off RTO in
	// ns, V0=cwnd after the CC's timeout reaction.
	KindRTO
	// KindFastRecovery is a fast-recovery entry (third dup ACK):
	// V0=ssthresh and V1=cwnd after the CC's loss reaction.
	KindFastRecovery
	// KindAgg is an MLTCP aggressiveness evaluation: V0=bytes_ratio,
	// V1=F(bytes_ratio).
	KindAgg
	// KindQueue is a periodic queue-occupancy sample: Link names the
	// link, N=queued bytes, M=queued packets.
	KindQueue
	// KindDrop is a queue drop: Link, Flow of the dropped packet,
	// N=queue occupancy in bytes after the drop.
	KindDrop
	// KindECNMark is a CE mark applied at enqueue: Link, Flow, N=queue
	// occupancy in bytes that triggered the mark.
	KindECNMark
	// KindIterStart is a training-iteration communication-phase start:
	// N=iteration index (0-based).
	KindIterStart
	// KindIterEnd is a communication-phase completion: N=iteration
	// index, M=the phase's duration (the per-iteration FCT) in ns.
	KindIterEnd
	// KindBandwidth is one completed bandwidth bucket: M=bucket width in
	// ns, V0=bytes delivered in the bucket ending at At.
	KindBandwidth
)

var kindNames = map[Kind]string{
	KindCwnd:         "cwnd",
	KindRetransmit:   "retx",
	KindRTO:          "rto",
	KindFastRecovery: "recovery",
	KindAgg:          "agg",
	KindQueue:        "queue",
	KindDrop:         "drop",
	KindECNMark:      "ecn",
	KindIterStart:    "iter_start",
	KindIterEnd:      "iter_end",
	KindBandwidth:    "bw",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String returns the kind's wire name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "unknown"
}

// Event is one telemetry record. It is a flat value type — no per-event
// allocation, no interface boxing — with a small payload union whose
// per-kind meaning is documented on the Kind constants. Flow is the
// emitting flow/job (0 when not flow-scoped); Link names the link for
// queue-scoped kinds.
type Event struct {
	At   sim.Time
	Kind Kind
	Flow int
	Link string
	N, M int64
	V0   float64
	V1   float64
}

// Sink receives emitted events. Implementations used inside a simulation
// run are called from the run's single goroutine and need no locking.
type Sink interface {
	Emit(e Event)
}

// Buffer is a Sink that retains events in emission order.
type Buffer struct {
	evs []Event
}

// Emit implements Sink.
func (b *Buffer) Emit(e Event) { b.evs = append(b.evs, e) }

// Events returns the buffered events in emission order. The slice is the
// buffer's backing store; do not mutate it while still emitting.
func (b *Buffer) Events() []Event { return b.evs }

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.evs) }

// Reset drops all buffered events, keeping the allocation.
func (b *Buffer) Reset() { b.evs = b.evs[:0] }

type discard struct{}

func (discard) Emit(Event) {}

// Discard is a Sink that drops every event. It measures the cost of
// event construction alone (see BenchmarkTelemetryOverhead).
var Discard Sink = discard{}

// Options tunes a Recorder.
type Options struct {
	// SampleEvery is the minimum spacing between successive high-rate
	// events (cwnd, agg) of the same flow; denser emissions are dropped.
	// Zero defaults to 50ms of simulated time; negative disables the
	// limit (every event is recorded).
	SampleEvery sim.Time
	// Registry, when non-nil, is updated as events flow: drop/mark/
	// retransmit counters, iteration counts, and occupancy histograms.
	Registry *Registry
}

// DefaultSampleEvery is the default minimum spacing of cwnd/agg events.
const DefaultSampleEvery = 50 * sim.Millisecond

type limitKey struct {
	kind Kind
	flow int
}

// Recorder is the typed front end components emit through. A nil
// *Recorder is the disabled state: every method is safe to call and
// returns immediately, so instrumented code needs no conditionals.
type Recorder struct {
	sink     Sink
	every    sim.Time
	last     map[limitKey]sim.Time
	limDrops int64
	reg      *Registry
	manifest *Manifest
}

// New builds a Recorder emitting into sink.
func New(sink Sink, opts Options) *Recorder {
	if sink == nil {
		panic("telemetry: nil sink (use a nil *Recorder to disable telemetry)")
	}
	every := opts.SampleEvery
	if every == 0 {
		every = DefaultSampleEvery
	}
	return &Recorder{
		sink:  sink,
		every: every,
		last:  make(map[limitKey]sim.Time),
		reg:   opts.Registry,
	}
}

// NewBuffered builds a Recorder over a fresh Buffer and Registry and
// returns all three — the usual arrangement for tracing one run.
func NewBuffered(opts Options) (*Recorder, *Buffer, *Registry) {
	buf := &Buffer{}
	if opts.Registry == nil {
		opts.Registry = NewRegistry()
	}
	return New(buf, opts), buf, opts.Registry
}

// Enabled reports whether events are being recorded. It is the one-check
// fast path for call sites that would otherwise compute event payloads.
//
//lint:allow telemetryemit Enabled's whole body is the nil test itself; it dereferences nothing
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the attached metrics registry (nil when disabled or
// none was configured).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// SetManifest attaches the run manifest (no-op on a nil Recorder).
func (r *Recorder) SetManifest(m *Manifest) {
	if r == nil {
		return
	}
	r.manifest = m
}

// Manifest returns the attached run manifest, if any.
func (r *Recorder) Manifest() *Manifest {
	if r == nil {
		return nil
	}
	return r.manifest
}

// Emit forwards a raw event to the sink. Custom components with event
// shapes not covered by the typed methods use this directly.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.sink.Emit(e)
}

// sampled reports whether a high-rate (kind, flow) emission is due, and
// records it. The first emission of each key always passes.
func (r *Recorder) sampled(kind Kind, flow int, at sim.Time) bool {
	if r.every < 0 {
		return true
	}
	k := limitKey{kind, flow}
	last, seen := r.last[k]
	if seen && at-last < r.every {
		r.limDrops++
		return false
	}
	r.last[k] = at
	return true
}

// DroppedByLimiter returns how many high-rate emissions the sampling
// limiter suppressed — the denominator context for reading a trace's
// cwnd/agg density (0 on a nil Recorder).
func (r *Recorder) DroppedByLimiter() int64 {
	if r == nil {
		return 0
	}
	return r.limDrops
}

// LimiterDropsMetric is the registry counter FlushLimiterStats records
// the sampling limiter's drop count into. Trace consumers read it from
// the metrics line to tell a sparse run from a rate-limited one.
const LimiterDropsMetric = "telemetry.limiter_drops"

// FlushLimiterStats records the sampling limiter's cumulative drop count
// into the attached registry under LimiterDropsMetric. Call it exactly
// once, immediately before serializing the trace (the counter is created
// even at zero drops, so consumers can rely on its presence).
func (r *Recorder) FlushLimiterStats() {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.reg.Counter(LimiterDropsMetric).Add(r.limDrops)
	}
}

// CwndUpdate records a congestion-window sample (rate-limited per flow).
func (r *Recorder) CwndUpdate(at sim.Time, flow int, cwnd, ssthresh float64, srtt sim.Time) {
	if r == nil || !r.sampled(KindCwnd, flow, at) {
		return
	}
	r.sink.Emit(Event{At: at, Kind: KindCwnd, Flow: flow, N: int64(srtt), V0: cwnd, V1: ssthresh})
}

// Retransmit records one retransmitted segment.
func (r *Recorder) Retransmit(at sim.Time, flow int, seq int64) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.reg.Counter("tcp.retransmits").Inc()
	}
	r.sink.Emit(Event{At: at, Kind: KindRetransmit, Flow: flow, N: seq})
}

// RTOFired records a retransmission timeout.
func (r *Recorder) RTOFired(at sim.Time, flow int, rto sim.Time, cwnd float64) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.reg.Counter("tcp.timeouts").Inc()
	}
	r.sink.Emit(Event{At: at, Kind: KindRTO, Flow: flow, N: int64(rto), V0: cwnd})
}

// FastRecovery records a fast-recovery entry.
func (r *Recorder) FastRecovery(at sim.Time, flow int, ssthresh, cwnd float64) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.reg.Counter("tcp.fast_recoveries").Inc()
	}
	r.sink.Emit(Event{At: at, Kind: KindFastRecovery, Flow: flow, V0: ssthresh, V1: cwnd})
}

// AggEval records an MLTCP aggressiveness evaluation (rate-limited per
// flow).
func (r *Recorder) AggEval(at sim.Time, flow int, ratio, factor float64) {
	if r == nil || !r.sampled(KindAgg, flow, at) {
		return
	}
	r.sink.Emit(Event{At: at, Kind: KindAgg, Flow: flow, V0: ratio, V1: factor})
}

// QueueSample records a queue-occupancy sample.
func (r *Recorder) QueueSample(at sim.Time, link string, bytes int64, pkts int) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.reg.Histogram("net.queue_bytes", DefaultQueueBuckets).Observe(float64(bytes))
	}
	r.sink.Emit(Event{At: at, Kind: KindQueue, Link: link, N: bytes, M: int64(pkts)})
}

// Drop records a queue drop.
func (r *Recorder) Drop(at sim.Time, link string, flow int, queueBytes int64) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.reg.Counter("net.drops").Inc()
	}
	r.sink.Emit(Event{At: at, Kind: KindDrop, Link: link, Flow: flow, N: queueBytes})
}

// ECNMark records a CE mark applied at enqueue.
func (r *Recorder) ECNMark(at sim.Time, link string, flow int, queueBytes int64) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.reg.Counter("net.ecn_marks").Inc()
	}
	r.sink.Emit(Event{At: at, Kind: KindECNMark, Link: link, Flow: flow, N: queueBytes})
}

// IterStart records a communication-phase start (iter is 0-based).
func (r *Recorder) IterStart(at sim.Time, flow int, iter int) {
	if r == nil {
		return
	}
	r.sink.Emit(Event{At: at, Kind: KindIterStart, Flow: flow, N: int64(iter)})
}

// IterEnd records a communication-phase completion; commDur is the
// phase's duration (the per-iteration FCT).
func (r *Recorder) IterEnd(at sim.Time, flow int, iter int, commDur sim.Time) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.reg.Counter("job.iterations").Inc()
		r.reg.Histogram("job.comm_seconds", DefaultDurationBuckets).Observe(commDur.Seconds())
	}
	r.sink.Emit(Event{At: at, Kind: KindIterEnd, Flow: flow, N: int64(iter), M: int64(commDur)})
}

// Bandwidth records one completed bandwidth bucket (At is the bucket's
// end; bytes were delivered over the preceding bucket width).
func (r *Recorder) Bandwidth(at sim.Time, flow int, bucket sim.Time, bytes float64) {
	if r == nil {
		return
	}
	r.sink.Emit(Event{At: at, Kind: KindBandwidth, Flow: flow, M: int64(bucket), V0: bytes})
}

// BucketSeries accumulates int64 quantities into fixed-width time
// buckets — the shared primitive behind the netsim bandwidth and queue
// samplers (previously two copies of the same grow-and-index code).
type BucketSeries struct {
	width   sim.Time
	buckets []int64
}

// NewBucketSeries returns an accumulator with the given bucket width.
func NewBucketSeries(width sim.Time) *BucketSeries {
	if width <= 0 {
		panic("telemetry: bucket width must be positive")
	}
	return &BucketSeries{width: width}
}

// Width returns the bucket width.
func (s *BucketSeries) Width() sim.Time { return s.width }

// Add accumulates v into the bucket containing time at.
func (s *BucketSeries) Add(at sim.Time, v int64) {
	idx := int(at / s.width)
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[idx] += v
}

// Buckets returns the accumulated values, one per bucket.
func (s *BucketSeries) Buckets() []int64 { return s.buckets }

// Sum returns the total accumulated value.
func (s *BucketSeries) Sum() int64 {
	var t int64
	for _, v := range s.buckets {
		t += v
	}
	return t
}

type ctxKey struct{}

// WithRecorder returns a context carrying the recorder, the seam through
// which backends receive telemetry without changing their interface.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the recorder from the context (nil — telemetry
// disabled — when absent).
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
