package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sort"
	"strconv"

	"mltcp/internal/sim"
)

// SchemaVersion is the trace format version, bumped on any incompatible
// change to the manifest or event encodings (pinned by the golden test).
const SchemaVersion = 1

// ManifestJob describes one job in the run manifest. Times are integer
// nanoseconds so trace consumers recompute derived quantities (ideals,
// interleave scores) exactly, with no float round-tripping.
type ManifestJob struct {
	// Flow is the job's flow ID, matching Event.Flow.
	Flow int `json:"flow"`
	// Name and Profile label the job and its model shape.
	Name    string `json:"name"`
	Profile string `json:"profile,omitempty"`
	// IdealNS is the isolated iteration time in ns.
	IdealNS int64 `json:"ideal_ns"`
	// BytesPerIter is the per-iteration communication volume at the
	// run's scale.
	BytesPerIter int64 `json:"bytes_per_iter"`
	// SrcRack, DstRack, and Links record the job's fabric placement and
	// the directed links its flow crosses. Topology runs only.
	SrcRack string   `json:"src_rack,omitempty"`
	DstRack string   `json:"dst_rack,omitempty"`
	Links   []string `json:"links,omitempty"`
}

// Manifest is the run's identity: everything needed to reproduce it and
// to interpret the event stream. It is the first line of a JSONL trace.
type Manifest struct {
	Kind     string `json:"kind"` // always "manifest"
	Schema   int    `json:"schema"`
	Scenario string `json:"scenario"`
	Backend  string `json:"backend"`
	Policy   string `json:"policy"`
	Seed     uint64 `json:"seed"`
	// CapacityGbps is the bottleneck rate at the backend's native scale.
	CapacityGbps float64 `json:"capacity_gbps"`
	// Scale is the packet-scale factor applied to the scenario (1 for
	// fluid).
	Scale float64 `json:"scale"`
	// DurationNS is the simulated horizon in ns.
	DurationNS int64 `json:"duration_ns"`
	// Revision is the VCS revision of the producing binary, when known.
	Revision string `json:"revision,omitempty"`
	// Topology labels the cluster fabric ("fattree-4"), with its rack and
	// directed-link counts. Empty for the single-bottleneck model.
	Topology    string `json:"topology,omitempty"`
	Racks       int    `json:"racks,omitempty"`
	FabricLinks int    `json:"fabric_links,omitempty"`
	// Predicted marks a learned-backend run: the manifest describes model
	// predictions rather than a simulation, and the trace carries no
	// per-iteration events. omitempty keeps exact-backend traces
	// byte-identical to pre-learned golden files.
	Predicted bool          `json:"predicted,omitempty"`
	Jobs      []ManifestJob `json:"jobs"`
}

// Duration returns the simulated horizon.
func (m *Manifest) Duration() sim.Time { return sim.Time(m.DurationNS) }

// Revision returns the build's VCS revision ("" when the binary carries
// no build info, e.g. under `go test` without VCS stamping).
func Revision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// appendEvent encodes one event as a JSON line (no trailing newline).
// Encoding is hand-rolled: field order is fixed, floats use the shortest
// exact representation, and nothing allocates beyond the destination
// buffer — the properties that make traces byte-identical across runs.
func appendEvent(b []byte, e Event) ([]byte, error) {
	name, ok := kindNames[e.Kind]
	if !ok {
		return b, fmt.Errorf("telemetry: cannot encode unknown event kind %d", e.Kind)
	}
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, name...)
	b = append(b, '"')
	if e.Flow != 0 {
		b = append(b, `,"flow":`...)
		b = strconv.AppendInt(b, int64(e.Flow), 10)
	}
	if e.Link != "" {
		lb, err := json.Marshal(e.Link)
		if err != nil {
			return b, err
		}
		b = append(b, `,"link":`...)
		b = append(b, lb...)
	}
	appendF := func(b []byte, key string, v float64) []byte {
		b = append(b, ',', '"')
		b = append(b, key...)
		b = append(b, `":`...)
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	appendI := func(b []byte, key string, v int64) []byte {
		b = append(b, ',', '"')
		b = append(b, key...)
		b = append(b, `":`...)
		return strconv.AppendInt(b, v, 10)
	}
	switch e.Kind {
	case KindCwnd:
		b = appendF(b, "cwnd", e.V0)
		b = appendF(b, "ssthresh", e.V1)
		b = appendI(b, "srtt_ns", e.N)
	case KindRetransmit:
		b = appendI(b, "seq", e.N)
	case KindRTO:
		b = appendI(b, "rto_ns", e.N)
		b = appendF(b, "cwnd", e.V0)
	case KindFastRecovery:
		b = appendF(b, "ssthresh", e.V0)
		b = appendF(b, "cwnd", e.V1)
	case KindAgg:
		b = appendF(b, "ratio", e.V0)
		b = appendF(b, "factor", e.V1)
	case KindQueue:
		b = appendI(b, "bytes", e.N)
		b = appendI(b, "pkts", e.M)
	case KindDrop, KindECNMark:
		b = appendI(b, "bytes", e.N)
	case KindIterStart:
		b = appendI(b, "iter", e.N)
	case KindIterEnd:
		b = appendI(b, "iter", e.N)
		b = appendI(b, "comm_ns", e.M)
	case KindBandwidth:
		b = appendI(b, "bucket_ns", e.M)
		b = appendF(b, "bytes", e.V0)
	}
	return append(b, '}'), nil
}

// EncodeEvent renders one event as its canonical JSON line — the exact
// bytes Write would emit for it, without the trailing newline. Trace
// analysis tools (internal/diagnose, cmd/mltcp-diff) use it to show
// decoded events in reports, so a report's rendering of an event is
// always the event's wire form.
func EncodeEvent(e Event) (string, error) {
	b, err := appendEvent(nil, e)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Field is one decoded payload field of an event: the schema's wire name
// and the value formatted exactly as the JSONL encoding formats it.
type Field struct {
	Name  string
	Value string
}

// Fields decodes the event's payload union into named fields, in wire
// order. The names and per-kind selection mirror appendEvent, so field
// lists in diagnostic reports match the trace schema one to one.
func (e Event) Fields() []Field {
	fF := func(name string, v float64) Field {
		return Field{name, strconv.FormatFloat(v, 'g', -1, 64)}
	}
	fI := func(name string, v int64) Field {
		return Field{name, strconv.FormatInt(v, 10)}
	}
	switch e.Kind {
	case KindCwnd:
		return []Field{fF("cwnd", e.V0), fF("ssthresh", e.V1), fI("srtt_ns", e.N)}
	case KindRetransmit:
		return []Field{fI("seq", e.N)}
	case KindRTO:
		return []Field{fI("rto_ns", e.N), fF("cwnd", e.V0)}
	case KindFastRecovery:
		return []Field{fF("ssthresh", e.V0), fF("cwnd", e.V1)}
	case KindAgg:
		return []Field{fF("ratio", e.V0), fF("factor", e.V1)}
	case KindQueue:
		return []Field{fI("bytes", e.N), fI("pkts", e.M)}
	case KindDrop, KindECNMark:
		return []Field{fI("bytes", e.N)}
	case KindIterStart:
		return []Field{fI("iter", e.N)}
	case KindIterEnd:
		return []Field{fI("iter", e.N), fI("comm_ns", e.M)}
	case KindBandwidth:
		return []Field{fI("bucket_ns", e.M), fF("bytes", e.V0)}
	}
	return nil
}

// wireEvent is the decode-side union of every event kind's fields.
type wireEvent struct {
	T        int64   `json:"t"`
	Kind     string  `json:"kind"`
	Flow     int     `json:"flow"`
	Link     string  `json:"link"`
	Cwnd     float64 `json:"cwnd"`
	Ssthresh float64 `json:"ssthresh"`
	SrttNS   int64   `json:"srtt_ns"`
	Seq      int64   `json:"seq"`
	RTONS    int64   `json:"rto_ns"`
	Ratio    float64 `json:"ratio"`
	Factor   float64 `json:"factor"`
	Bytes    float64 `json:"bytes"`
	Pkts     int64   `json:"pkts"`
	Iter     int64   `json:"iter"`
	CommNS   int64   `json:"comm_ns"`
	BucketNS int64   `json:"bucket_ns"`
}

func (w wireEvent) event() (Event, error) {
	k, ok := kindByName[w.Kind]
	if !ok {
		return Event{}, fmt.Errorf("telemetry: unknown event kind %q", w.Kind)
	}
	e := Event{At: sim.Time(w.T), Kind: k, Flow: w.Flow, Link: w.Link}
	switch k {
	case KindCwnd:
		e.V0, e.V1, e.N = w.Cwnd, w.Ssthresh, w.SrttNS
	case KindRetransmit:
		e.N = w.Seq
	case KindRTO:
		e.N, e.V0 = w.RTONS, w.Cwnd
	case KindFastRecovery:
		e.V0, e.V1 = w.Ssthresh, w.Cwnd
	case KindAgg:
		e.V0, e.V1 = w.Ratio, w.Factor
	case KindQueue:
		e.N, e.M = int64(w.Bytes), w.Pkts
	case KindDrop, KindECNMark:
		e.N = int64(w.Bytes)
	case KindIterStart:
		e.N = w.Iter
	case KindIterEnd:
		e.N, e.M = w.Iter, w.CommNS
	case KindBandwidth:
		e.M, e.V0 = w.BucketNS, w.Bytes
	}
	return e, nil
}

// Write serializes a trace as JSONL: the manifest line (when m is
// non-nil), every event stably sorted by time, then a closing metrics
// line (when reg is non-nil). Events equal in time keep their emission
// order, so output is a pure function of the run.
func Write(w io.Writer, m *Manifest, events []Event, reg *Registry) error {
	bw := bufio.NewWriter(w)
	if m != nil {
		mc := *m
		mc.Kind = "manifest"
		if mc.Schema == 0 {
			mc.Schema = SchemaVersion
		}
		line, err := json.Marshal(&mc)
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	var buf []byte
	for _, e := range sorted {
		var err error
		buf, err = appendEvent(buf[:0], e)
		if err != nil {
			return err
		}
		bw.Write(buf)
		bw.WriteByte('\n')
	}
	if reg != nil {
		line, err := json.Marshal(struct {
			Kind string `json:"kind"`
			*Snapshot
		}{"metrics", reg.Snapshot()})
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Trace is a decoded JSONL trace.
type Trace struct {
	Manifest *Manifest
	Events   []Event
	Metrics  *Snapshot
}

// Read decodes a JSONL trace written by Write. Manifest and metrics
// lines are optional; unknown event kinds are an error (the schema is
// versioned, not open-ended). Every malformed line — truncated mid-write,
// corrupted on disk, or hand-edited — fails with its line number rather
// than decoding into a garbled partial trace, and a manifest from a
// different schema version is rejected with both versions named.
func Read(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: corrupt or truncated trace line: %w", lineNo, err)
		}
		switch probe.Kind {
		case "manifest":
			m := &Manifest{}
			if err := json.Unmarshal(line, m); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: corrupt manifest: %w", lineNo, err)
			}
			if m.Schema != SchemaVersion {
				return nil, fmt.Errorf("telemetry: line %d: trace is v%d, reader supports v%d",
					lineNo, m.Schema, SchemaVersion)
			}
			tr.Manifest = m
		case "metrics":
			s := &Snapshot{}
			if err := json.Unmarshal(line, s); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: corrupt metrics line: %w", lineNo, err)
			}
			tr.Metrics = s
		default:
			var w wireEvent
			if err := json.Unmarshal(line, &w); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: corrupt or truncated trace line: %w", lineNo, err)
			}
			e, err := w.event()
			if err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			tr.Events = append(tr.Events, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: after line %d: %w", lineNo, err)
	}
	return tr, nil
}

// ReadTrace opens and decodes a JSONL trace file, annotating any decode
// error with the path — the standard entry point for trace-consuming
// tools (cmd/mltcp-trace, cmd/mltcp-diff, internal/diagnose callers).
func ReadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}
