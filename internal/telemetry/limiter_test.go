package telemetry

import (
	"testing"

	"mltcp/internal/sim"
)

// The rate limiter's edge behavior is part of the trace contract: which
// events survive sampling determines what downstream analysis sees, so
// first-emission, per-key independence, and the drop accounting are
// pinned here.

func TestLimiterFirstEventAlwaysPasses(t *testing.T) {
	rec, buf, _ := NewBuffered(Options{})
	rec.CwndUpdate(0, 1, 10, 20, sim.Millisecond)
	if buf.Len() != 1 {
		t.Fatalf("first cwnd event dropped (%d buffered)", buf.Len())
	}
	// Even at time zero with a huge interval, another flow's first event
	// still passes: keys are (kind, flow), not global.
	rec.CwndUpdate(0, 2, 10, 20, sim.Millisecond)
	if buf.Len() != 2 {
		t.Fatalf("first event of flow 2 dropped (%d buffered)", buf.Len())
	}
	if got := rec.DroppedByLimiter(); got != 0 {
		t.Fatalf("DroppedByLimiter = %d before any suppression", got)
	}
}

func TestLimiterPerKindFlowIndependence(t *testing.T) {
	rec, buf, _ := NewBuffered(Options{SampleEvery: 100 * sim.Millisecond})
	at := 10 * sim.Millisecond
	rec.CwndUpdate(at, 1, 10, 20, sim.Millisecond) // passes: first (cwnd, 1)
	rec.AggEval(at, 1, 0.5, 1.5)                   // passes: first (agg, 1) — kind independent
	rec.CwndUpdate(at, 2, 10, 20, sim.Millisecond) // passes: first (cwnd, 2) — flow independent
	rec.CwndUpdate(at+sim.Millisecond, 1, 11, 20, sim.Millisecond) // dropped: 1ms < 100ms
	rec.AggEval(at+sim.Millisecond, 2, 0.5, 1.5)                   // passes: first (agg, 2)
	if buf.Len() != 4 {
		t.Fatalf("got %d events, want 4", buf.Len())
	}
	if got := rec.DroppedByLimiter(); got != 1 {
		t.Fatalf("DroppedByLimiter = %d, want 1", got)
	}
	// Once the interval elapses for a key, that key emits again without
	// disturbing the others.
	rec.CwndUpdate(at+100*sim.Millisecond, 1, 12, 20, sim.Millisecond)
	if buf.Len() != 5 {
		t.Fatalf("got %d events after interval, want 5", buf.Len())
	}
}

func TestLimiterDropCounterCorrectness(t *testing.T) {
	rec, buf, reg := NewBuffered(Options{SampleEvery: 50 * sim.Millisecond})
	const emits = 100
	for i := 0; i < emits; i++ {
		rec.CwndUpdate(sim.Time(i)*sim.Millisecond, 1, float64(i), 20, sim.Millisecond)
	}
	// 100 emissions over 99ms at a 50ms floor: t=0 and t=50 pass.
	if buf.Len() != 2 {
		t.Fatalf("got %d events, want 2", buf.Len())
	}
	if got := rec.DroppedByLimiter(); got != emits-2 {
		t.Fatalf("DroppedByLimiter = %d, want %d", got, emits-2)
	}
	// Unlimited kinds never touch the drop counter, and registry counters
	// keep counting the underlying occurrences regardless of sampling.
	for i := 0; i < 7; i++ {
		rec.Retransmit(sim.Time(i), 1, int64(i))
	}
	if got := rec.DroppedByLimiter(); got != emits-2 {
		t.Fatalf("DroppedByLimiter moved to %d on unlimited kind", got)
	}
	if got := reg.Counter("tcp.retransmits").Value(); got != 7 {
		t.Fatalf("tcp.retransmits = %d, want 7", got)
	}
}

func TestLimiterNegativeIntervalDisables(t *testing.T) {
	rec, buf, _ := NewBuffered(Options{SampleEvery: -1})
	for i := 0; i < 10; i++ {
		rec.AggEval(0, 1, 0.5, 1.5) // same key, same instant, every one passes
	}
	if buf.Len() != 10 {
		t.Fatalf("got %d events with limiting disabled, want 10", buf.Len())
	}
	if got := rec.DroppedByLimiter(); got != 0 {
		t.Fatalf("DroppedByLimiter = %d with limiting disabled", got)
	}
}

func TestLimiterNilRecorder(t *testing.T) {
	var rec *Recorder
	if got := rec.DroppedByLimiter(); got != 0 {
		t.Fatalf("nil recorder DroppedByLimiter = %d", got)
	}
}
