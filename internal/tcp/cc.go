// Package tcp implements a simulated TCP transport over internal/netsim: an
// app-limited sender with cumulative ACKs, dup-ACK fast retransmit, NewReno-
// style fast recovery, RTO with exponential backoff and RTT estimation per
// RFC 6298, and a pluggable congestion-control interface modeled after
// Linux's pluggable congestion modules (which is where the paper inserts
// MLTCP). Reno, CUBIC, and DCTCP are provided; internal/core wraps any of
// them to build MLTCP-X.
package tcp

import (
	"mltcp/internal/sim"
)

// AckEvent carries everything a congestion-control algorithm may want to
// know about one cumulative ACK.
type AckEvent struct {
	// Now is the simulation time the ACK was processed.
	Now sim.Time
	// AckedBytes is how many new bytes this ACK covers.
	AckedBytes int64
	// AckedPackets is how many full MSS packets this ACK newly covers
	// (Algorithm 1's num_acks); cumulative ACKs may cover several.
	AckedPackets int
	// RTT is the sample measured from this ACK, or 0 when no valid
	// sample was available (e.g. during recovery, per Karn's rule).
	RTT sim.Time
	// ECNEcho is set when the receiver echoed a congestion mark.
	ECNEcho bool
	// InSlowStart reports whether the sender was in slow start when the
	// ACK arrived (cwnd < ssthresh), before any CC action.
	InSlowStart bool
}

// CongestionControl is the pluggable window-update policy. Implementations
// mutate the window through the Window interface; the sender machinery owns
// loss detection and retransmission.
type CongestionControl interface {
	// Name identifies the algorithm ("reno", "mltcp-reno", ...).
	Name() string
	// OnInit is called once when the sender is created.
	OnInit(w Window)
	// OnAck is called for every cumulative ACK that advances snd_una
	// outside of recovery. It should grow the window.
	OnAck(w Window, ev AckEvent)
	// OnPacketLoss is called once on entering fast recovery (third
	// duplicate ACK). It should perform the multiplicative decrease and
	// set ssthresh.
	OnPacketLoss(w Window, now sim.Time)
	// OnTimeout is called when the retransmission timer fires.
	OnTimeout(w Window, now sim.Time)
}

// Window is the sender state a congestion-control algorithm may read and
// write. Window sizes are in packets (the paper follows Linux in expressing
// cwnd in packets, not bytes).
type Window interface {
	Cwnd() float64
	SetCwnd(cwnd float64)
	Ssthresh() float64
	SetSsthresh(ss float64)
	// SRTT returns the smoothed RTT estimate (0 before the first sample).
	SRTT() sim.Time
	// InSlowStart reports cwnd < ssthresh.
	InSlowStart() bool
}

// Default window bounds, in packets.
const (
	DefaultInitialCwnd = 10.0
	MinCwnd            = 2.0
)

// Reno is classic TCP Reno / NewReno congestion control: slow start doubles
// per RTT, congestion avoidance adds num_acks/cwnd per ACK, loss halves.
// This is the base algorithm the paper augments (Algorithm 1 scales the
// congestion-avoidance increment).
type Reno struct{}

// NewReno returns the Reno algorithm.
func NewReno() *Reno { return &Reno{} }

// Name implements CongestionControl.
func (*Reno) Name() string { return "reno" }

// OnInit implements CongestionControl.
func (*Reno) OnInit(Window) {}

// OnAck implements CongestionControl.
func (*Reno) OnAck(w Window, ev AckEvent) {
	if ev.InSlowStart {
		w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets))
		return
	}
	w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets)/w.Cwnd())
}

// OnPacketLoss implements CongestionControl.
func (*Reno) OnPacketLoss(w Window, _ sim.Time) {
	ss := w.Cwnd() / 2
	if ss < MinCwnd {
		ss = MinCwnd
	}
	w.SetSsthresh(ss)
	w.SetCwnd(ss)
}

// OnTimeout implements CongestionControl.
func (*Reno) OnTimeout(w Window, _ sim.Time) {
	ss := w.Cwnd() / 2
	if ss < MinCwnd {
		ss = MinCwnd
	}
	w.SetSsthresh(ss)
	w.SetCwnd(1)
}
