package tcp

import (
	"testing"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
)

func TestCubicTransfersAllBytes(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, func() netsim.Queue { return netsim.NewDropTail(30 * netsim.DefaultMTU) })
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewCubic(), Config{})
	const total = 10_000_000
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	f.Sender.Write(total)
	eng.RunUntil(60 * sim.Second)
	if !done {
		t.Fatalf("cubic transfer incomplete: %d/%d, stats %+v",
			f.Sender.TotalBytesAcked(), total, f.Sender.Stats())
	}
	if f.Receiver.BytesReceived() != total {
		t.Errorf("received %d, want %d", f.Receiver.BytesReceived(), total)
	}
}

func TestCubicGrowsTowardWmaxAfterLoss(t *testing.T) {
	cu := NewCubic()
	w := &fakeWindow{cwnd: 100, ssthresh: 1e6}
	cu.OnInit(w)
	// Loss at cwnd=100: wMax=100, cwnd -> 70.
	cu.OnPacketLoss(w, sim.Second)
	if !near(w.cwnd, 70, 1e-9) {
		t.Fatalf("post-loss cwnd = %v, want 70", w.cwnd)
	}
	// Feed ACKs over simulated time; cwnd should climb back toward 100
	// and plateau near it rather than blowing past instantly.
	now := sim.Second
	for i := 0; i < 2000; i++ {
		now += sim.Millisecond
		cu.OnAck(w, AckEvent{Now: now, AckedPackets: 1, InSlowStart: false})
	}
	if w.cwnd < 90 {
		t.Errorf("cwnd after 2s = %v, want to approach wMax 100", w.cwnd)
	}
	if w.cwnd > 130 {
		t.Errorf("cwnd after 2s = %v, overshot wMax badly", w.cwnd)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	cu := NewCubic()
	w := &fakeWindow{cwnd: 100, ssthresh: 1e6}
	cu.OnInit(w)
	cu.OnPacketLoss(w, 0) // wMax = 100
	// Second loss below wMax: fast convergence lowers the anchor.
	w.cwnd = 80
	cu.OnPacketLoss(w, sim.Second)
	if cu.wMax >= 80 {
		t.Errorf("wMax = %v after loss below previous wMax, want < 80", cu.wMax)
	}
}

func TestCubicSlowStart(t *testing.T) {
	cu := NewCubic()
	w := &fakeWindow{cwnd: 10, ssthresh: 100}
	cu.OnInit(w)
	cu.OnAck(w, AckEvent{Now: sim.Millisecond, AckedPackets: 3, InSlowStart: true})
	if w.cwnd != 13 {
		t.Errorf("slow-start cwnd = %v, want 13", w.cwnd)
	}
}

func TestCubicTimeoutResetsEpoch(t *testing.T) {
	cu := NewCubic()
	w := &fakeWindow{cwnd: 50, ssthresh: 1e6}
	cu.OnInit(w)
	cu.OnAck(w, AckEvent{Now: sim.Second, AckedPackets: 1})
	cu.OnTimeout(w, 2*sim.Second)
	if w.cwnd != 1 {
		t.Errorf("post-timeout cwnd = %v, want 1", w.cwnd)
	}
	if cu.epochStart != -1 {
		t.Error("timeout did not reset the cubic epoch")
	}
}

func TestDCTCPKeepsQueueShort(t *testing.T) {
	eng := sim.New()
	// ECN threshold at 20 packets in a 100-packet buffer.
	net := testNet(eng, 1, func() netsim.Queue {
		return netsim.NewECNQueue(netsim.NewDropTail(100*netsim.DefaultMTU), 20*netsim.DefaultMTU)
	})
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewDCTCP(), Config{ECN: true})
	f.Sender.Write(1 << 40)

	// Sample the bottleneck queue occupancy after convergence.
	var samples []int64
	var maxQ int64
	for ts := 500 * sim.Millisecond; ts <= 3*sim.Second; ts += 10 * sim.Millisecond {
		eng.At(ts, func(*sim.Engine) {
			q := net.Forward.Queue().Bytes()
			samples = append(samples, q)
			if q > maxQ {
				maxQ = q
			}
		})
	}
	eng.RunUntil(3 * sim.Second)

	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// DCTCP should hold the queue near the marking threshold, far from
	// the 100-packet drop point.
	if maxQ > 70*netsim.DefaultMTU {
		t.Errorf("max queue = %d bytes (%.0f pkts), want well below drop point",
			maxQ, float64(maxQ)/netsim.DefaultMTU)
	}
	// And still use the link: throughput >= 80% of line rate.
	gput := float64(f.Sender.TotalBytesAcked()) * 8 / 3
	if gput < 80e6 {
		t.Errorf("goodput = %.1f Mbps, want >= 80", gput/1e6)
	}
	if st := f.Sender.Stats(); st.Timeouts > 0 {
		t.Errorf("DCTCP suffered %d timeouts", st.Timeouts)
	}
}

func TestDCTCPAlphaTracksMarking(t *testing.T) {
	d := NewDCTCP()
	w := &fakeWindow{cwnd: 10, ssthresh: 5}
	d.OnInit(w)
	// All ACKs marked: alpha should climb toward 1.
	for i := 0; i < 200; i++ {
		d.OnAck(w, AckEvent{AckedBytes: 14600, AckedPackets: 10, ECNEcho: true})
	}
	if d.Alpha() < 0.9 {
		t.Errorf("alpha = %v after all-marked stream, want ~1", d.Alpha())
	}
	// Then no marks: alpha decays toward 0.
	for i := 0; i < 200; i++ {
		d.OnAck(w, AckEvent{AckedBytes: 14600, AckedPackets: 10})
	}
	if d.Alpha() > 0.1 {
		t.Errorf("alpha = %v after unmarked stream, want ~0", d.Alpha())
	}
}

func TestDCTCPProportionalDecrease(t *testing.T) {
	d := NewDCTCP()
	w := &fakeWindow{cwnd: 100, ssthresh: 50} // in CA
	d.OnInit(w)
	// Prime alpha low with unmarked traffic.
	for i := 0; i < 300; i++ {
		d.OnAck(w, AckEvent{AckedBytes: 14600, AckedPackets: 10})
	}
	w.cwnd = 100
	alpha := d.Alpha()
	before := w.cwnd
	// One marked window: cut should be ~alpha/2, far less than half.
	d.markedBytes = 0
	d.ackedBytes = 0
	d.windowEnd = d.totalAcked // force a window boundary on next ack
	d.OnAck(w, AckEvent{AckedBytes: 1460, AckedPackets: 1, ECNEcho: true})
	cut := (before - w.cwnd) / before
	if cut > alpha {
		t.Errorf("cut fraction %v exceeds alpha %v; decrease not proportional", cut, alpha)
	}
}

func TestCCNames(t *testing.T) {
	for _, c := range []struct {
		cc   CongestionControl
		want string
	}{
		{NewReno(), "reno"},
		{NewCubic(), "cubic"},
		{NewDCTCP(), "dctcp"},
	} {
		if got := c.cc.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestDelayedAckHalvesAckCount(t *testing.T) {
	run := func(delayed bool) (acks int64, done bool) {
		eng := sim.New()
		// Deep buffer: lossless transfer, so no out-of-order arrivals
		// force immediate ACKs and the halving is clean.
		net := testNet(eng, 1, func() netsim.Queue { return netsim.NewDropTail(4096 * netsim.DefaultMTU) })
		f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{DelayedAck: delayed})
		finished := false
		f.Sender.Drained(func(sim.Time) { finished = true })
		f.Sender.Write(3_000_000)
		eng.RunUntil(10 * sim.Second)
		return f.Receiver.AcksSent(), finished
	}
	normal, okN := run(false)
	delayed, okD := run(true)
	if !okN || !okD {
		t.Fatal("transfer incomplete")
	}
	if float64(delayed) > float64(normal)*0.7 {
		t.Errorf("delayed ACKs sent %d vs %d normal; expected ~half", delayed, normal)
	}
}

func TestDelayedAckNumAcksTwo(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{DelayedAck: true})
	sawTwo := false
	f.Sender.OnAckHook(func(ev AckEvent) {
		if ev.AckedPackets >= 2 {
			sawTwo = true
		}
	})
	f.Sender.Write(2_000_000)
	eng.RunUntil(5 * sim.Second)
	if !sawTwo {
		t.Error("no cumulative ACK covered 2+ packets under delayed ACKs")
	}
}

func TestDelayedAckLoneTailPacketFlushedByTimer(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(),
		Config{DelayedAck: true, DelAckTimeout: sim.Millisecond})
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	// One single packet: only the timer can release its ACK.
	f.Sender.Write(1000)
	eng.RunUntil(100 * sim.Millisecond)
	if !done {
		t.Fatal("lone packet never acknowledged; delayed-ACK timer failed")
	}
}

// countingCC wraps Reno and tallies acked bytes/packets as an MLTCP-style
// tracker would (the real tracker lives in internal/core, which depends on
// this package).
type countingCC struct {
	Reno
	ackedBytes   int64
	ackedPackets int
}

func (c *countingCC) OnAck(w Window, ev AckEvent) {
	c.ackedBytes += ev.AckedBytes
	c.ackedPackets += ev.AckedPackets
	c.Reno.OnAck(w, ev)
}

func TestDelayedAckByteAccountingIntact(t *testing.T) {
	// MLTCP's tracker counts acked bytes; coarser cumulative ACKs must
	// not lose any: the CC-visible totals still cover the whole
	// transfer.
	eng := sim.New()
	net := testNet(eng, 1, nil)
	cc := &countingCC{}
	const total = 1_000_000
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], cc, Config{DelayedAck: true})
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	f.Sender.Write(total)
	eng.RunUntil(10 * sim.Second)
	if !done {
		t.Fatal("transfer incomplete")
	}
	if cc.ackedBytes != total {
		t.Errorf("CC saw %d acked bytes, want %d", cc.ackedBytes, total)
	}
	// num_acks (full packets) should cover the transfer to within the
	// sub-MSS remainder.
	if min := total/netsim.MaxPayload - 1; cc.ackedPackets < min {
		t.Errorf("CC saw %d acked packets, want >= %d", cc.ackedPackets, min)
	}
}
