package tcp

import (
	"fmt"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// Config tunes a Sender. The zero value is usable: every field has a
// sensible default applied by NewSender.
type Config struct {
	// MSS is the payload bytes per data packet (default netsim.MaxPayload).
	MSS int
	// InitialCwnd is the initial window in packets (default 10).
	InitialCwnd float64
	// MaxCwnd caps the window in packets (default 1e6).
	MaxCwnd float64
	// MinRTO floors the retransmission timeout (default 10ms, a
	// datacenter-ish value; Linux's 200ms would dominate the simulated
	// timescales).
	MinRTO sim.Time
	// ECN makes data packets ECN-capable (required for DCTCP).
	ECN bool
	// SlowStartAfterIdle resets cwnd to InitialCwnd when the flow
	// resumes after an idle period longer than the RTO, matching
	// Linux's default behaviour between DNN iterations.
	// Use the DisableSlowStartAfterIdle field to turn it off.
	DisableSlowStartAfterIdle bool
	// Pacing spreads packet emissions at cwnd/SRTT × PacingGain instead
	// of bursting the whole window, as modern kernels (fq pacing) do.
	// Pacing smooths queue occupancy and reduces slow-start burst loss.
	Pacing bool
	// PacingGain scales the pacing rate above the nominal cwnd/SRTT
	// (default 1.25, Linux's congestion-avoidance gain).
	PacingGain float64
	// DelayedAck enables RFC 1122-style delayed ACKs on the receiver
	// (applied by NewFlow): cumulative ACKs then routinely cover two
	// packets, exercising Algorithm 1's num_acks > 1 path.
	DelayedAck bool
	// DelAckTimeout bounds how long a lone packet waits for its ACK
	// (default 500µs; Linux uses up to 40ms, far too long for the
	// microsecond RTTs simulated here).
	DelAckTimeout sim.Time
	// Prio computes the packet priority at emission time (pFabric's
	// remaining-size tag). Nil leaves priorities at zero.
	Prio func(s *Sender) int64
	// Band computes the strict-priority band at emission time (PIAS's
	// MLFQ tag). Nil leaves bands at zero.
	Band func(s *Sender) int
	// Trace receives the sender's telemetry: cwnd samples on ACKs,
	// retransmits, RTO firings, and fast-recovery entries. Nil (the
	// default) disables emission at near-zero cost.
	Trace *telemetry.Recorder
}

func (c *Config) applyDefaults() {
	if c.MSS == 0 {
		c.MSS = netsim.MaxPayload
	}
	if c.MSS <= 0 || c.MSS > netsim.MaxPayload {
		panic(fmt.Sprintf("tcp: invalid MSS %d", c.MSS))
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = DefaultInitialCwnd
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 1e6
	}
	if c.MinRTO == 0 {
		c.MinRTO = 10 * sim.Millisecond
	}
	if c.PacingGain == 0 {
		c.PacingGain = 1.25
	}
	if c.PacingGain < 0 {
		panic(fmt.Sprintf("tcp: negative pacing gain %v", c.PacingGain))
	}
}

// Stats are cumulative sender counters.
type Stats struct {
	PacketsSent    int64
	Retransmits    int64
	Timeouts       int64
	FastRecoveries int64
	BytesAcked     int64
}

// Sender is one TCP flow's sending side. The application supplies data with
// Write; Drained fires when everything written so far has been
// acknowledged, which is how the DNN job loop (compute -> communicate ->
// compute) is driven.
type Sender struct {
	eng  *sim.Engine
	host *netsim.Host
	flow netsim.FlowID
	dst  netsim.NodeID
	cc   CongestionControl
	cfg  Config

	cwnd     float64
	ssthresh float64

	sndUna   int64 // lowest unacknowledged byte
	sndNxt   int64 // next byte to transmit
	appLimit int64 // total bytes written by the application

	dupAcks       int
	inRecovery    bool
	recoverSeq    int64
	recoveryExtra float64 // window inflation from dup ACKs during recovery
	recoveryAcked int64   // bytes advanced by partial ACKs, reported on exit

	srtt, rttvar, rto sim.Time
	rtoTimer          *sim.Timer
	backoff           uint

	lastActivity sim.Time
	iterStart    int64 // first byte of the current Write batch

	paceTimer *sim.Timer
	nextSend  sim.Time

	ackRemainder int64 // sub-MSS ack bytes carried between ACKs

	drained func(now sim.Time)
	onAck   func(ev AckEvent)

	stats Stats
}

// NewSender creates a sender for flow on host, destined for dst, and
// attaches it to the host so returning ACKs reach it.
func NewSender(eng *sim.Engine, host *netsim.Host, flow netsim.FlowID, dst netsim.NodeID, cc CongestionControl, cfg Config) *Sender {
	cfg.applyDefaults()
	if cc == nil {
		panic("tcp: nil congestion control")
	}
	s := &Sender{
		eng:      eng,
		host:     host,
		flow:     flow,
		dst:      dst,
		cc:       cc,
		cfg:      cfg,
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.MaxCwnd,
		rto:      cfg.MinRTO,
	}
	s.rtoTimer = sim.NewTimer(eng, s.onRTO)
	if cfg.Pacing {
		s.paceTimer = sim.NewTimer(eng, func(e *sim.Engine) { s.trySend(e.Now()) })
	}
	host.Attach(flow, s)
	cc.OnInit(s)
	return s
}

// Flow returns the sender's flow ID.
func (s *Sender) Flow() netsim.FlowID { return s.flow }

// CC returns the congestion-control algorithm in use.
func (s *Sender) CC() CongestionControl { return s.cc }

// Stats returns a snapshot of the counters.
func (s *Sender) Stats() Stats { return s.stats }

// Cwnd implements Window.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// SetCwnd implements Window, clamping to [MinCwnd/2, MaxCwnd]. The lower
// clamp permits cwnd=1 after a timeout but nothing pathological.
func (s *Sender) SetCwnd(c float64) {
	if c < 1 {
		c = 1
	}
	if c > s.cfg.MaxCwnd {
		c = s.cfg.MaxCwnd
	}
	s.cwnd = c
}

// Ssthresh implements Window.
func (s *Sender) Ssthresh() float64 { return s.ssthresh }

// SetSsthresh implements Window.
func (s *Sender) SetSsthresh(v float64) {
	if v < MinCwnd {
		v = MinCwnd
	}
	s.ssthresh = v
}

// SRTT implements Window.
func (s *Sender) SRTT() sim.Time { return s.srtt }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() sim.Time { return s.rto }

// InSlowStart implements Window.
func (s *Sender) InSlowStart() bool { return s.cwnd < s.ssthresh }

// Remaining returns the unacknowledged portion of the application's demand,
// pFabric's "remaining flow size".
func (s *Sender) Remaining() int64 { return s.appLimit - s.sndUna }

// BatchBytesAcked returns the bytes acknowledged from the current Write
// batch.
func (s *Sender) BatchBytesAcked() int64 { return s.sndUna - s.iterStart }

// BatchBytesSent returns the bytes transmitted (not necessarily
// acknowledged) from the current Write batch, the quantity PIAS-style
// byte-count taggers demote on.
func (s *Sender) BatchBytesSent() int64 { return s.sndNxt - s.iterStart }

// TotalBytesAcked returns the lifetime acknowledged byte count.
func (s *Sender) TotalBytesAcked() int64 { return s.sndUna }

// Drained registers fn to run whenever all written data has been
// acknowledged. It replaces any previous callback.
func (s *Sender) Drained(fn func(now sim.Time)) { s.drained = fn }

// OnAckHook registers an observer invoked for every processed cumulative
// ACK (after CC). Tests and MLTCP's parameter learner use it.
func (s *Sender) OnAckHook(fn func(ev AckEvent)) { s.onAck = fn }

// Write appends n bytes of application data and starts transmitting as the
// window allows. Writing while previous data is still in flight simply
// extends the demand.
func (s *Sender) Write(n int64) {
	if n <= 0 {
		panic(fmt.Sprintf("tcp: Write of %d bytes", n))
	}
	now := s.eng.Now()
	if s.sndUna == s.appLimit {
		// Fresh batch after a drain: new iteration for tagging.
		s.iterStart = s.appLimit
		if !s.cfg.DisableSlowStartAfterIdle && now-s.lastActivity > s.rto && s.appLimit > 0 {
			// Linux's slow-start-after-idle: window restarts, the
			// ssthresh memory is kept.
			s.cwnd = s.cfg.InitialCwnd
		}
	}
	s.appLimit += n
	s.trySend(now)
}

func (s *Sender) outstanding() float64 {
	return float64(s.sndNxt-s.sndUna) / float64(s.cfg.MSS)
}

func (s *Sender) trySend(now sim.Time) {
	window := s.cwnd + s.recoveryExtra
	for s.sndNxt < s.appLimit && s.outstanding()+1 <= window {
		if s.cfg.Pacing && s.srtt > 0 {
			if now < s.nextSend {
				if !s.paceTimer.Armed() {
					s.paceTimer.Reset(s.nextSend - now)
				}
				return
			}
			// Space emissions so the window drains over one SRTT
			// (divided by the gain).
			interval := s.srtt.Div(s.cfg.PacingGain * s.cwnd)
			s.nextSend = now + interval
		}
		payload := int64(s.cfg.MSS)
		if rest := s.appLimit - s.sndNxt; rest < payload {
			payload = rest
		}
		s.emit(now, s.sndNxt, int(payload), false)
		s.sndNxt += payload
	}
}

//hot
func (s *Sender) emit(now sim.Time, seq int64, payload int, isRetx bool) {
	p := s.host.NewPacket() // zeroed, so assignment matches a fresh literal
	p.Flow = s.flow
	p.Dst = s.dst
	p.Seq = seq
	p.Payload = payload
	p.ECNCapable = s.cfg.ECN
	p.SentAt = now
	if isRetx {
		p.SentAt = 0 // Karn: no RTT sample from retransmits
		s.stats.Retransmits++
		s.cfg.Trace.Retransmit(now, int(s.flow), seq)
	}
	if s.cfg.Prio != nil {
		p.Prio = s.cfg.Prio(s)
	}
	if s.cfg.Band != nil {
		p.Band = s.cfg.Band(s)
	}
	s.stats.PacketsSent++
	s.lastActivity = now
	s.host.Send(p)
	if !s.rtoTimer.Armed() {
		s.rtoTimer.Reset(s.rto)
	}
}

// HandlePacket implements netsim.Endpoint; the sender receives only ACKs.
func (s *Sender) HandlePacket(eng *sim.Engine, p *netsim.Packet) {
	if !p.Ack {
		panic(fmt.Sprintf("tcp: sender for flow %d received a data packet", s.flow))
	}
	now := eng.Now()
	switch {
	case p.AckNo > s.sndUna:
		s.processAdvance(now, p)
	case p.AckNo == s.sndUna && s.sndNxt > s.sndUna:
		s.processDupAck(now)
	default:
		// Stale ACK: ignore.
	}
}

func (s *Sender) processAdvance(now sim.Time, p *netsim.Packet) {
	acked := p.AckNo - s.sndUna
	s.dupAcks = 0

	var rttSample sim.Time
	if p.SentAt > 0 && !s.inRecovery {
		rttSample = now - p.SentAt
		s.updateRTT(rttSample)
	}

	wasSS := s.InSlowStart()

	if s.inRecovery {
		if p.AckNo >= s.recoverSeq {
			// Full ACK: leave recovery, deflate to ssthresh. Bytes
			// that partial ACKs advanced during recovery are
			// reported to the CC now, so byte accounting (and
			// MLTCP's bytes_ratio) stays exact across recovery.
			s.inRecovery = false
			s.recoveryExtra = 0
			s.SetCwnd(s.ssthresh)
			s.sndUna = p.AckNo
		} else {
			// Partial ACK (NewReno): retransmit the next hole,
			// stay in recovery; defer CC reporting to exit.
			s.recoveryAcked += acked
			s.sndUna = p.AckNo
			s.retransmitHead(now)
			s.rtoTimer.Reset(s.rto)
			s.trySend(now)
			return
		}
	} else {
		s.sndUna = p.AckNo
	}
	// Flush bytes deferred by partial ACKs — set on recovery exit above,
	// or stranded by an RTO that aborted recovery.
	acked += s.recoveryAcked
	s.recoveryAcked = 0

	s.stats.BytesAcked += acked
	numAcks := int((acked + s.ackRemainder) / int64(s.cfg.MSS))
	s.ackRemainder = (acked + s.ackRemainder) % int64(s.cfg.MSS)

	ev := AckEvent{
		Now:          now,
		AckedBytes:   acked,
		AckedPackets: numAcks,
		RTT:          rttSample,
		ECNEcho:      p.ECNEcho,
		InSlowStart:  wasSS,
	}
	s.cc.OnAck(s, ev)
	if s.onAck != nil {
		s.onAck(ev)
	}
	s.cfg.Trace.CwndUpdate(now, int(s.flow), s.cwnd, s.ssthresh, s.srtt)

	s.backoff = 0
	if s.sndUna == s.appLimit {
		s.rtoTimer.Stop()
		s.lastActivity = now
		if s.drained != nil {
			s.drained(now)
		}
	} else {
		s.rtoTimer.Reset(s.rto)
	}
	s.trySend(now)
}

func (s *Sender) processDupAck(now sim.Time) {
	s.dupAcks++
	if s.inRecovery {
		// Window inflation: each dup ACK signals a departure.
		s.recoveryExtra++
		s.trySend(now)
		return
	}
	if s.dupAcks == 3 {
		s.stats.FastRecoveries++
		s.inRecovery = true
		s.recoverSeq = s.sndNxt
		s.cc.OnPacketLoss(s, now)
		s.cfg.Trace.FastRecovery(now, int(s.flow), s.ssthresh, s.cwnd)
		s.recoveryExtra = 3
		s.retransmitHead(now)
		s.rtoTimer.Reset(s.rto)
	}
}

func (s *Sender) retransmitHead(now sim.Time) {
	payload := int64(s.cfg.MSS)
	if rest := s.appLimit - s.sndUna; rest < payload {
		payload = rest
	}
	if payload <= 0 {
		return
	}
	s.emit(now, s.sndUna, int(payload), true)
}

func (s *Sender) onRTO(e *sim.Engine) {
	if s.sndUna == s.appLimit {
		return // nothing outstanding
	}
	now := e.Now()
	s.stats.Timeouts++
	s.dupAcks = 0
	s.inRecovery = false
	s.recoveryExtra = 0
	s.cc.OnTimeout(s, now)
	// Go-back-N: rewind and resend from the hole.
	s.sndNxt = s.sndUna
	if s.backoff < 16 {
		s.backoff++
	}
	s.rto = s.rto << 1
	if max := 60 * sim.Second; s.rto > max {
		s.rto = max
	}
	s.cfg.Trace.RTOFired(now, int(s.flow), s.rto, s.cwnd)
	s.trySend(now)
	if !s.rtoTimer.Armed() {
		s.rtoTimer.Reset(s.rto)
	}
}

// updateRTT implements RFC 6298 smoothing.
func (s *Sender) updateRTT(sample sim.Time) {
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
}
