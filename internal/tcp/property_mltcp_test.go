// Properties of the bandwidth aggressiveness function and its composition
// with every congestion-control algorithm. These live in an external test
// package (tcp_test) rather than in property_test.go because they exercise
// internal/core's MLTCP wrapper, and core imports tcp — an internal test
// file importing core would be an import cycle.
package tcp_test

import (
	"math"
	"testing"
	"testing/quick"

	"mltcp/internal/core"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
)

// fakeWindow is a minimal tcp.Window for driving CC algorithms directly,
// without a simulated network.
type fakeWindow struct {
	cwnd, ssthresh float64
	srtt           sim.Time
}

func (w *fakeWindow) Cwnd() float64         { return w.cwnd }
func (w *fakeWindow) SetCwnd(c float64)     { w.cwnd = c }
func (w *fakeWindow) Ssthresh() float64     { return w.ssthresh }
func (w *fakeWindow) SetSsthresh(s float64) { w.ssthresh = s }
func (w *fakeWindow) SRTT() sim.Time        { return w.srtt }
func (w *fakeWindow) InSlowStart() bool     { return w.cwnd < w.ssthresh }

// fixedRatio is a core.RatioSource pinned to one bytes_ratio, isolating
// the wrapper's scaling from Tracker/Learner dynamics.
type fixedRatio float64

func (f fixedRatio) OnAck(sim.Time, int64) float64 { return float64(f) }

// ccVariants lists the five base algorithms §6 says MLTCP augments the
// same way. Swift gets an explicit delay target so a single 100µs RTT
// sample lands on its additive-increase (congestion-avoidance) path.
func ccVariants() map[string]func() tcp.CongestionControl {
	return map[string]func() tcp.CongestionControl{
		"reno":  func() tcp.CongestionControl { return tcp.NewReno() },
		"cubic": func() tcp.CongestionControl { return tcp.NewCubic() },
		"dctcp": func() tcp.CongestionControl { return tcp.NewDCTCP() },
		"d2tcp": func() tcp.CongestionControl { return tcp.NewD2TCP() },
		"swift": func() tcp.CongestionControl { s := tcp.NewSwift(); s.Target = sim.Millisecond; return s },
	}
}

// caAck is a congestion-avoidance ACK: one full packet, a valid sub-target
// RTT sample, no ECN, past slow start.
func caAck() tcp.AckEvent {
	return tcp.AckEvent{
		Now:          sim.Second,
		AckedBytes:   1460,
		AckedPackets: 1,
		RTT:          100 * sim.Microsecond,
		InSlowStart:  false,
	}
}

// caWindow returns a window mid congestion avoidance (cwnd ≥ ssthresh).
func caWindow(cwnd float64) *fakeWindow {
	return &fakeWindow{cwnd: cwnd, ssthresh: cwnd / 2, srtt: 100 * sim.Microsecond}
}

// caIncrement applies one CA ack to a fresh instance of the algorithm and
// returns the cwnd change.
func caIncrement(cc tcp.CongestionControl, cwnd float64) float64 {
	w := caWindow(cwnd)
	cc.OnInit(w)
	cc.OnAck(w, caAck())
	return w.cwnd - cwnd
}

// Property (Eq. 2): F(r) = slope·r + intercept is monotone non-decreasing
// in bytes_ratio for any non-negative slope, and F(0) equals the intercept
// floor — the paper's requirement (ii) plus its range lower bound.
func TestLinearAggressivenessProperties(t *testing.T) {
	t.Parallel()
	prop := func(slopeQ, interceptQ uint16, r1q, r2q uint16) bool {
		slope := float64(slopeQ) / 1000 // [0, 65.5]
		intercept := float64(interceptQ) / 1000
		r1 := float64(r1q) / 65535 // [0, 1]
		r2 := float64(r2q) / 65535
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		f := core.Linear(slope, intercept)
		if f.Eval(0) != intercept {
			return false
		}
		if f.Eval(r1) > f.Eval(r2)+1e-12 {
			return false
		}
		return f.IsNondecreasing()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for all five MLTCP-augmented algorithms, the congestion-
// avoidance increment composes exactly as Algorithm 1 prescribes —
// wrapped Δ = F(bytes_ratio) × base Δ whenever the base grows the window.
func TestMLTCPScalingComposesAcrossAlgorithms(t *testing.T) {
	t.Parallel()
	for name, mk := range ccVariants() {
		for _, cwnd := range []float64{4, 10, 20, 50, 123.5} {
			for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
				base := caIncrement(mk(), cwnd)
				wrapped := caIncrement(core.Wrap(mk(), core.Default(), fixedRatio(r)), cwnd)
				if base <= 0 {
					t.Fatalf("%s: cwnd=%v base CA increment %v, want positive (test premise)", name, cwnd, base)
				}
				want := core.Default().Eval(r) * base
				if math.Abs(wrapped-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Errorf("%s: cwnd=%v r=%v wrapped Δ=%v, want F(r)·Δ=%v (base Δ=%v)",
						name, cwnd, r, wrapped, want, base)
				}
			}
		}
	}
}

// Property: the wrapped increment is monotone non-decreasing in
// bytes_ratio for every algorithm — flows nearer the end of an iteration
// never climb more slowly (the mechanism behind the sliding effect).
func TestMLTCPIncrementMonotoneInRatio(t *testing.T) {
	t.Parallel()
	for name, mk := range ccVariants() {
		prop := func(cwndQ uint8, r1q, r2q uint16) bool {
			cwnd := 4 + float64(cwndQ) // [4, 259]
			r1 := float64(r1q) / 65535
			r2 := float64(r2q) / 65535
			if r1 > r2 {
				r1, r2 = r2, r1
			}
			d1 := caIncrement(core.Wrap(mk(), core.Default(), fixedRatio(r1)), cwnd)
			d2 := caIncrement(core.Wrap(mk(), core.Default(), fixedRatio(r2)), cwnd)
			return d1 <= d2+1e-12
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: an arbitrary linear F scales the same increment as the
// equivalent constant function — scaling depends only on the value
// F(bytes_ratio), not on the function's shape (F(r) and const F≡F(r) are
// interchangeable at ratio r).
func TestMLTCPScalingDependsOnlyOnFValue(t *testing.T) {
	t.Parallel()
	constant := func(v float64) core.AggFunc {
		return core.AggFunc{Name: "const", Eval: func(float64) float64 { return v }}
	}
	for name, mk := range ccVariants() {
		for _, r := range []float64{0.1, 0.6, 0.9} {
			slope, intercept := 1.75, 0.25
			viaLinear := caIncrement(core.Wrap(mk(), core.Linear(slope, intercept), fixedRatio(r)), 20)
			viaConst := caIncrement(core.Wrap(mk(), constant(slope*r+intercept), fixedRatio(r)), 20)
			if math.Abs(viaLinear-viaConst) > 1e-12 {
				t.Errorf("%s: r=%v linear Δ=%v const Δ=%v", name, r, viaLinear, viaConst)
			}
		}
	}
}

// Property: slow-start growth is untouched by the wrapper for every
// algorithm (Algorithm 1 hooks only congestion avoidance), at every
// bytes_ratio.
func TestMLTCPSlowStartUnscaled(t *testing.T) {
	t.Parallel()
	for name, mk := range ccVariants() {
		for _, r := range []float64{0, 0.5, 1} {
			ev := caAck()
			ev.InSlowStart = true
			run := func(cc tcp.CongestionControl) float64 {
				w := &fakeWindow{cwnd: 5, ssthresh: 100, srtt: 100 * sim.Microsecond}
				cc.OnInit(w)
				cc.OnAck(w, ev)
				return w.cwnd - 5
			}
			base := run(mk())
			wrapped := run(core.Wrap(mk(), core.Default(), fixedRatio(r)))
			if base != wrapped {
				t.Errorf("%s: r=%v slow-start Δ base=%v wrapped=%v, want identical", name, r, base, wrapped)
			}
		}
	}
}

// Property: the wrapper clamps out-of-range ratios into [0, 1] before
// evaluating F, so a misbehaving tracker can never push aggressiveness
// outside the function's designed range.
func TestMLTCPRatioClamped(t *testing.T) {
	t.Parallel()
	for _, r := range []float64{-5, -0.001, 1.001, 40} {
		m := core.Wrap(tcp.NewReno(), core.Default(), fixedRatio(r))
		w := caWindow(20)
		m.OnInit(w)
		m.OnAck(w, caAck())
		if br := m.BytesRatio(); br < 0 || br > 1 {
			t.Errorf("ratio %v reported as %v, want clamped to [0,1]", r, br)
		}
		lo, hi := core.Default().Range()
		delta := w.cwnd - 20
		base := caIncrement(tcp.NewReno(), 20)
		if delta < lo*base-1e-12 || delta > hi*base+1e-12 {
			t.Errorf("ratio %v produced Δ=%v outside [%v, %v]", r, delta, lo*base, hi*base)
		}
	}
}
