package tcp

import (
	"fmt"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
)

// Receiver is one TCP flow's receiving side: it tracks the in-order edge,
// buffers out-of-order segments, and acknowledges every data packet with a
// cumulative ACK (echoing the data packet's send timestamp for RTT
// measurement and its ECN mark for DCTCP).
type Receiver struct {
	eng     *sim.Engine
	host    *netsim.Host
	flow    netsim.FlowID
	replyTo netsim.NodeID

	rcvNxt     int64
	outOfOrder map[int64]int // seq -> payload length

	bytesReceived int64 // cumulative in-order bytes delivered
	acksSent      int64

	// Delayed-ACK state (EnableDelayedAck): at most one data packet is
	// held unacknowledged; the second arrival or the timer flushes.
	delAck        bool
	delAckTimer   *sim.Timer
	delAckTimeout sim.Time
	pendingAck    bool
	pendingEcho   sim.Time
	pendingECN    bool
}

// NewReceiver creates the receiving endpoint for flow on host, sending ACKs
// back to replyTo, and attaches it to the host.
func NewReceiver(eng *sim.Engine, host *netsim.Host, flow netsim.FlowID, replyTo netsim.NodeID) *Receiver {
	r := &Receiver{
		eng:        eng,
		host:       host,
		flow:       flow,
		replyTo:    replyTo,
		outOfOrder: make(map[int64]int),
	}
	host.Attach(flow, r)
	return r
}

// EnableDelayedAck switches the receiver to RFC 1122-style delayed ACKs:
// every second data packet is acknowledged immediately, a lone packet after
// the given timeout. Cumulative ACKs then regularly cover two packets,
// exercising Algorithm 1's num_acks > 1 path. Must be called before
// traffic starts.
func (r *Receiver) EnableDelayedAck(timeout sim.Time) {
	if timeout <= 0 {
		panic("tcp: delayed-ACK timeout must be positive")
	}
	r.delAck = true
	r.delAckTimer = sim.NewTimer(r.eng, func(*sim.Engine) { r.flushDelayedAck() })
	// Arm lazily; store the timeout in the timer by resetting on use.
	r.delAckTimeout = timeout
}

// BytesReceived returns the cumulative in-order bytes delivered.
func (r *Receiver) BytesReceived() int64 { return r.bytesReceived }

// AcksSent returns how many ACKs the receiver has emitted.
func (r *Receiver) AcksSent() int64 { return r.acksSent }

// HandlePacket implements netsim.Endpoint.
func (r *Receiver) HandlePacket(_ *sim.Engine, p *netsim.Packet) {
	if p.Ack {
		panic(fmt.Sprintf("tcp: receiver for flow %d received an ACK", r.flow))
	}
	echoTS := p.SentAt
	switch {
	case p.Seq == r.rcvNxt:
		r.rcvNxt += int64(p.Payload)
		// Pull any buffered continuation forward.
		for {
			n, ok := r.outOfOrder[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.outOfOrder, r.rcvNxt)
			r.rcvNxt += int64(n)
		}
	case p.Seq > r.rcvNxt:
		r.outOfOrder[p.Seq] = p.Payload
		echoTS = 0 // out-of-order: the dup ACK must not produce an RTT sample
	default:
		// Duplicate of already-delivered data (spurious retransmit).
		echoTS = 0
	}
	r.bytesReceived = r.rcvNxt

	if r.delAck && p.Seq == r.rcvNxt-int64(p.Payload) && len(r.outOfOrder) == 0 {
		// In-order delivery with nothing missing: delay the ACK.
		if r.pendingAck {
			// Second packet: ACK both now.
			r.pendingAck = false
			r.delAckTimer.Stop()
			r.sendAck(echoTS, r.pendingECN || p.ECNMarked)
		} else {
			r.pendingAck = true
			r.pendingEcho = echoTS
			r.pendingECN = p.ECNMarked
			r.delAckTimer.Reset(r.delAckTimeout)
		}
		return
	}
	// Out-of-order, duplicate, or delayed ACKs disabled: ACK at once
	// (flushing anything pending first so ACKs stay ordered).
	if r.pendingAck {
		r.flushDelayedAck()
	}
	r.sendAck(echoTS, p.ECNMarked)
}

func (r *Receiver) flushDelayedAck() {
	if !r.pendingAck {
		return
	}
	r.pendingAck = false
	r.delAckTimer.Stop()
	r.sendAck(r.pendingEcho, r.pendingECN)
}

//hot
func (r *Receiver) sendAck(echoTS sim.Time, ecnEcho bool) {
	r.acksSent++
	p := r.host.NewPacket() // zeroed, so assignment matches a fresh literal
	p.Flow = r.flow
	p.Dst = r.replyTo
	p.Ack = true
	p.AckNo = r.rcvNxt
	p.SentAt = echoTS
	p.ECNEcho = ecnEcho
	r.host.Send(p)
}
