package tcp

import (
	"mltcp/internal/sim"
)

// DCTCP implements Data Center TCP (Alizadeh et al. 2010): the sender
// maintains an EWMA estimate alpha of the fraction of ECN-marked bytes per
// window and, once per window with at least one mark, reduces cwnd by
// alpha/2 — a decrease proportional to the extent of congestion. Window
// growth follows Reno. Requires Config.ECN on the sender and an
// netsim.ECNQueue at the bottleneck.
type DCTCP struct {
	g     float64 // EWMA gain, conventionally 1/16
	alpha float64

	windowEnd   int64 // bytes-acked boundary of the current observation window
	ackedBytes  int64
	markedBytes int64
	seenMark    bool
	totalAcked  int64
}

// NewDCTCP returns DCTCP with the standard gain g = 1/16 and alpha starting
// at 1 (conservative until the first estimate).
func NewDCTCP() *DCTCP { return &DCTCP{g: 1.0 / 16, alpha: 1} }

// Name implements CongestionControl.
func (*DCTCP) Name() string { return "dctcp" }

// Alpha returns the current congestion estimate (tests and traces).
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnInit implements CongestionControl.
func (d *DCTCP) OnInit(w Window) {
	d.windowEnd = 0
	d.ackedBytes = 0
	d.markedBytes = 0
	d.seenMark = false
	d.totalAcked = 0
}

// OnAck implements CongestionControl.
func (d *DCTCP) OnAck(w Window, ev AckEvent) {
	d.totalAcked += ev.AckedBytes
	d.ackedBytes += ev.AckedBytes
	if ev.ECNEcho {
		d.markedBytes += ev.AckedBytes
		d.seenMark = true
	}

	// Once per window of data, refresh alpha and apply the proportional
	// decrease if any marks were seen.
	if d.totalAcked >= d.windowEnd {
		if d.ackedBytes > 0 {
			frac := float64(d.markedBytes) / float64(d.ackedBytes)
			d.alpha = (1-d.g)*d.alpha + d.g*frac
		}
		if d.seenMark {
			cwnd := w.Cwnd() * (1 - d.alpha/2)
			if cwnd < MinCwnd {
				cwnd = MinCwnd
			}
			w.SetSsthresh(cwnd)
			w.SetCwnd(cwnd)
		}
		d.ackedBytes = 0
		d.markedBytes = 0
		d.seenMark = false
		// Observe for one cwnd's worth of bytes (cwnd is in packets).
		d.windowEnd = d.totalAcked + int64(w.Cwnd())*1460
	}

	// Growth: Reno-style.
	if ev.InSlowStart && !ev.ECNEcho {
		w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets))
	} else {
		w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets)/w.Cwnd())
	}
}

// OnPacketLoss implements CongestionControl: fall back to Reno halving on
// actual loss.
func (d *DCTCP) OnPacketLoss(w Window, now sim.Time) {
	(&Reno{}).OnPacketLoss(w, now)
}

// OnTimeout implements CongestionControl.
func (d *DCTCP) OnTimeout(w Window, now sim.Time) {
	(&Reno{}).OnTimeout(w, now)
}
