package tcp

import (
	"testing"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
)

func ecnNet(eng *sim.Engine, pairs int) *netsim.Dumbbell {
	return netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       pairs,
		HostRate:        1 * gbps,
		BottleneckRate:  100 * mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
		BottleneckQueue: func() netsim.Queue {
			return netsim.NewECNQueue(netsim.NewDropTail(100*netsim.DefaultMTU), 20*netsim.DefaultMTU)
		},
	})
}

const (
	gbps = 1_000_000_000
	mbps = 1_000_000
)

func TestD2TCPBehavesLikeDCTCPWithoutDeadline(t *testing.T) {
	eng := sim.New()
	net := ecnNet(eng, 1)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewD2TCP(), Config{ECN: true})
	const total = 8_000_000
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	f.Sender.Write(total)
	eng.RunUntil(30 * sim.Second)
	if !done || f.Receiver.BytesReceived() != total {
		t.Fatalf("d2tcp transfer incomplete: %d/%d", f.Receiver.BytesReceived(), total)
	}
}

func TestD2TCPImminenceClamps(t *testing.T) {
	d := NewD2TCP()
	w := &fakeWindow{cwnd: 10, ssthresh: 5, srtt: sim.Millisecond}
	// No deadline: neutral.
	if got := d.imminence(w, 0); got != 1 {
		t.Errorf("no-deadline imminence = %v, want 1", got)
	}
	remaining := int64(1_000_000)
	d.Remaining = func() int64 { return remaining }
	d.Deadline = 10 * sim.Second
	// Loose deadline: low urgency, clamped at 0.5.
	if got := d.imminence(w, 0); got != 0.5 {
		t.Errorf("loose imminence = %v, want 0.5", got)
	}
	// Past deadline: clamped at 2.
	if got := d.imminence(w, 11*sim.Second); got != 2 {
		t.Errorf("past-deadline imminence = %v, want 2", got)
	}
}

func TestD2TCPNearDeadlineBacksOffLess(t *testing.T) {
	// Same alpha, one marked window: the near-deadline flow must cut
	// its window less than the far-deadline flow (p = alpha^d with
	// alpha < 1 grows as d shrinks... d small = loose deadline: the
	// penalty alpha^0.5 > alpha^2, so LOOSE deadlines cut MORE).
	mk := func(deadline sim.Time) (*D2TCP, *fakeWindow) {
		d := NewD2TCP()
		w := &fakeWindow{cwnd: 100, ssthresh: 50, srtt: sim.Millisecond}
		d.OnInit(w)
		// Prime alpha to ~0.25 with a mix of marked traffic.
		for i := 0; i < 50; i++ {
			d.dctcp.alpha = 0.25
			d.OnAck(w, AckEvent{Now: sim.Time(i) * sim.Millisecond, AckedBytes: 146000, AckedPackets: 100})
		}
		w.cwnd = 100
		d.Deadline = deadline
		d.Remaining = func() int64 { return 10_000_000 }
		// Force a marked window boundary.
		d.dctcp.seenMark = true
		d.dctcp.markedBytes = 146000
		d.dctcp.ackedBytes = 146000
		d.dctcp.windowEnd = d.dctcp.totalAcked
		d.OnAck(w, AckEvent{Now: 100 * sim.Millisecond, AckedBytes: 1460, AckedPackets: 1, ECNEcho: true})
		return d, w
	}
	_, tight := mk(120 * sim.Millisecond) // ~68ms needed vs 20ms left: urgent
	_, loose := mk(100 * sim.Second)      // ages of slack
	if tight.cwnd <= loose.cwnd {
		t.Errorf("near-deadline cwnd %v <= far-deadline %v; gamma correction inverted",
			tight.cwnd, loose.cwnd)
	}
}

func TestD2TCPTightDeadlineWinsBandwidth(t *testing.T) {
	// Two D2TCP flows share an ECN bottleneck: the one with the tight
	// deadline should claim more bandwidth and finish first.
	eng := sim.New()
	net := ecnNet(eng, 2)
	const total = 20_000_000

	mkFlow := func(id netsim.FlowID, pair int, deadline sim.Time) *Flow {
		cc := NewD2TCP()
		f := NewFlow(eng, id, net.Left[pair], net.Right[pair], cc, Config{ECN: true})
		cc.Deadline = deadline
		cc.Remaining = f.Sender.Remaining
		return f
	}
	tight := mkFlow(1, 0, 2500*sim.Millisecond)
	loose := mkFlow(2, 1, 60*sim.Second)
	var tightDone, looseDone sim.Time
	tight.Sender.Drained(func(now sim.Time) { tightDone = now })
	loose.Sender.Drained(func(now sim.Time) { looseDone = now })
	tight.Sender.Write(total)
	loose.Sender.Write(total)
	eng.RunUntil(30 * sim.Second)

	if tightDone == 0 || looseDone == 0 {
		t.Fatalf("transfers incomplete: tight %v loose %v", tightDone, looseDone)
	}
	if tightDone >= looseDone {
		t.Errorf("tight-deadline flow finished at %v, after loose at %v", tightDone, looseDone)
	}
}

func TestD2TCPName(t *testing.T) {
	if NewD2TCP().Name() != "d2tcp" {
		t.Error("name")
	}
}
