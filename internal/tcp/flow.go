package tcp

import (
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
)

// Flow bundles a sender on one host with its receiver on another — the unit
// a DNN job's communication phase drives.
type Flow struct {
	Sender   *Sender
	Receiver *Receiver
}

// NewFlow wires a sender on src to a receiver on dst with the given flow ID
// and configuration.
func NewFlow(eng *sim.Engine, id netsim.FlowID, src, dst *netsim.Host, cc CongestionControl, cfg Config) *Flow {
	f := &Flow{
		Sender:   NewSender(eng, src, id, dst.ID(), cc, cfg),
		Receiver: NewReceiver(eng, dst, id, src.ID()),
	}
	if cfg.DelayedAck {
		timeout := cfg.DelAckTimeout
		if timeout == 0 {
			timeout = 500 * sim.Microsecond
		}
		f.Receiver.EnableDelayedAck(timeout)
	}
	return f
}

// PFabricPrio is a Config.Prio function implementing pFabric's tag: the
// flow's remaining (unacknowledged) bytes, so shorter remaining flows win.
func PFabricPrio(s *Sender) int64 { return s.Remaining() }

// PIASBands returns a Config.Band function implementing PIAS's
// information-agnostic tagging: a flow's packets start in the highest
// priority band and are demoted as the bytes sent in the current batch
// cross each threshold.
func PIASBands(thresholds []int64) func(*Sender) int {
	return func(s *Sender) int {
		sent := s.BatchBytesSent()
		band := 0
		for _, th := range thresholds {
			if sent >= th {
				band++
			}
		}
		return band
	}
}
