package tcp

import (
	"math"

	"mltcp/internal/sim"
)

// D2TCP implements Deadline-Aware Datacenter TCP (Vamanan et al., SIGCOMM
// 2012), the deadline-aware family §6 cites: DCTCP's congestion estimate
// alpha is gamma-corrected by deadline imminence before being applied, so
// flows far from their deadlines back off more and near-deadline flows
// back off less:
//
//	p = alpha^d,  d = Tc/D  (needed time over remaining time), d ∈ [½, 2]
//	cwnd ← cwnd · (1 − p/2) on a marked window
type D2TCP struct {
	dctcp DCTCP

	// Deadline is the absolute completion deadline (0 = no deadline:
	// behave exactly like DCTCP, d = 1).
	Deadline sim.Time
	// Remaining reports the flow's outstanding bytes (wired to
	// Sender.Remaining by the application). Nil means unknown (d = 1).
	Remaining func() int64
}

// NewD2TCP returns D2TCP with DCTCP's standard constants.
func NewD2TCP() *D2TCP { return &D2TCP{dctcp: *NewDCTCP()} }

// Name implements CongestionControl.
func (*D2TCP) Name() string { return "d2tcp" }

// Alpha exposes the underlying congestion estimate.
func (d *D2TCP) Alpha() float64 { return d.dctcp.Alpha() }

// OnInit implements CongestionControl.
func (d *D2TCP) OnInit(w Window) { d.dctcp.OnInit(w) }

// imminence computes the deadline factor d = Tc/D clamped to [0.5, 2].
func (d *D2TCP) imminence(w Window, now sim.Time) float64 {
	if d.Deadline == 0 || d.Remaining == nil {
		return 1
	}
	left := d.Deadline - now
	if left <= 0 {
		return 2 // past deadline: maximum urgency
	}
	srtt := w.SRTT()
	if srtt == 0 {
		return 1
	}
	rate := w.Cwnd() * 1460 / srtt.Seconds() // bytes/sec estimate
	if rate <= 0 {
		return 1
	}
	needed := float64(d.Remaining()) / rate
	imm := needed / left.Seconds()
	return math.Min(2, math.Max(0.5, imm))
}

// OnAck implements CongestionControl: identical bookkeeping to DCTCP, but
// the proportional decrease uses the gamma-corrected penalty alpha^d.
func (d *D2TCP) OnAck(w Window, ev AckEvent) {
	dd := &d.dctcp
	dd.totalAcked += ev.AckedBytes
	dd.ackedBytes += ev.AckedBytes
	if ev.ECNEcho {
		dd.markedBytes += ev.AckedBytes
		dd.seenMark = true
	}
	if dd.totalAcked >= dd.windowEnd {
		if dd.ackedBytes > 0 {
			frac := float64(dd.markedBytes) / float64(dd.ackedBytes)
			dd.alpha = (1-dd.g)*dd.alpha + dd.g*frac
		}
		if dd.seenMark {
			p := math.Pow(dd.alpha, d.imminence(w, ev.Now))
			cwnd := w.Cwnd() * (1 - p/2)
			if cwnd < MinCwnd {
				cwnd = MinCwnd
			}
			w.SetSsthresh(cwnd)
			w.SetCwnd(cwnd)
		}
		dd.ackedBytes = 0
		dd.markedBytes = 0
		dd.seenMark = false
		dd.windowEnd = dd.totalAcked + int64(w.Cwnd())*1460
	}
	if ev.InSlowStart && !ev.ECNEcho {
		w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets))
	} else {
		w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets)/w.Cwnd())
	}
}

// OnPacketLoss implements CongestionControl.
func (d *D2TCP) OnPacketLoss(w Window, now sim.Time) { d.dctcp.OnPacketLoss(w, now) }

// OnTimeout implements CongestionControl.
func (d *D2TCP) OnTimeout(w Window, now sim.Time) { d.dctcp.OnTimeout(w, now) }
