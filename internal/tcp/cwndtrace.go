package tcp

import (
	"mltcp/internal/sim"
)

// CwndSample is one point of a congestion-window trace.
type CwndSample struct {
	At   sim.Time
	Cwnd float64
}

// CwndTrace records a sender's congestion window over time, for
// visualizing MLTCP's window dynamics (the packet-level analogue of the
// paper's bandwidth plots).
type CwndTrace struct {
	samples  []CwndSample
	interval sim.Time
	lastAt   sim.Time
}

// SampleCwnd attaches a trace to the sender, recording at most one sample
// per interval (sampled on ACK arrivals, where the window changes). It
// must be called before traffic starts; it chains onto any existing ACK
// hook.
func SampleCwnd(s *Sender, interval sim.Time) *CwndTrace {
	if interval <= 0 {
		panic("tcp: SampleCwnd interval must be positive")
	}
	t := &CwndTrace{interval: interval, lastAt: -interval}
	prev := s.onAck
	s.OnAckHook(func(ev AckEvent) {
		if prev != nil {
			prev(ev)
		}
		if ev.Now-t.lastAt >= t.interval {
			t.samples = append(t.samples, CwndSample{At: ev.Now, Cwnd: s.Cwnd()})
			t.lastAt = ev.Now
		}
	})
	return t
}

// Samples returns the recorded trace.
func (t *CwndTrace) Samples() []CwndSample { return t.samples }

// Values returns just the window sizes, for charting.
func (t *CwndTrace) Values() []float64 {
	out := make([]float64, len(t.samples))
	for i, s := range t.samples {
		out[i] = s.Cwnd
	}
	return out
}

// Max returns the largest sampled window (0 when empty).
func (t *CwndTrace) Max() float64 {
	var m float64
	for _, s := range t.samples {
		if s.Cwnd > m {
			m = s.Cwnd
		}
	}
	return m
}
