package tcp

import (
	"testing"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
)

func TestSwiftTransfersAllBytes(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewSwift(), Config{})
	const total = 10_000_000
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	f.Sender.Write(total)
	eng.RunUntil(30 * sim.Second)
	if !done {
		t.Fatalf("swift transfer incomplete: %d/%d, stats %+v",
			f.Sender.TotalBytesAcked(), total, f.Sender.Stats())
	}
	if f.Receiver.BytesReceived() != total {
		t.Errorf("received %d, want %d", f.Receiver.BytesReceived(), total)
	}
}

func TestSwiftKeepsQueueShort(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil) // 100-packet drop-tail bottleneck
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewSwift(), Config{})
	f.Sender.Write(1 << 40)
	var maxQ int64
	for ts := 500 * sim.Millisecond; ts <= 3*sim.Second; ts += 10 * sim.Millisecond {
		eng.At(ts, func(*sim.Engine) {
			if q := net.Forward.Queue().Bytes(); q > maxQ {
				maxQ = q
			}
		})
	}
	eng.RunUntil(3 * sim.Second)
	// A delay-based control should hold the standing queue well below
	// the 100-packet drop point (target = 4×baseRTT ≈ small).
	if maxQ > 60*netsim.DefaultMTU {
		t.Errorf("max queue = %.0f pkts, want << 100 (delay-based)", float64(maxQ)/netsim.DefaultMTU)
	}
	// While still achieving high utilization.
	gput := float64(f.Sender.TotalBytesAcked()) * 8 / 3
	if gput < 70e6 {
		t.Errorf("goodput = %.1f Mbps, want >= 70", gput/1e6)
	}
	if st := f.Sender.Stats(); st.Timeouts > 2 {
		t.Errorf("swift suffered %d timeouts", st.Timeouts)
	}
}

func TestSwiftUnitDecrease(t *testing.T) {
	s := NewSwift()
	w := &fakeWindow{cwnd: 100, ssthresh: 1}
	s.OnInit(w)
	// Prime base RTT with a low sample.
	s.OnAck(w, AckEvent{Now: sim.Millisecond, RTT: sim.Millisecond, AckedPackets: 1})
	base := w.cwnd
	// RTT way over target (4ms): decrease proportional to excess.
	s.OnAck(w, AckEvent{Now: 10 * sim.Millisecond, RTT: 16 * sim.Millisecond, AckedPackets: 1})
	if w.cwnd >= base {
		t.Fatalf("no decrease on over-target RTT: %v -> %v", base, w.cwnd)
	}
	// A second over-target sample within the same RTT must NOT decrease
	// again (once per RTT).
	after := w.cwnd
	s.OnAck(w, AckEvent{Now: 11 * sim.Millisecond, RTT: 16 * sim.Millisecond, AckedPackets: 1})
	if w.cwnd != after {
		t.Errorf("second decrease within one RTT: %v -> %v", after, w.cwnd)
	}
}

func TestSwiftAdditiveIncreaseBelowTarget(t *testing.T) {
	s := NewSwift()
	w := &fakeWindow{cwnd: 50, ssthresh: 10} // not slow start
	s.OnInit(w)
	s.OnAck(w, AckEvent{Now: sim.Millisecond, RTT: sim.Millisecond, AckedPackets: 1})
	base := w.cwnd
	s.OnAck(w, AckEvent{Now: 2 * sim.Millisecond, RTT: 2 * sim.Millisecond, AckedPackets: 1})
	want := base + 1.0/base
	if !near(w.cwnd, want, 1e-9) {
		t.Errorf("below-target increase: %v, want %v", w.cwnd, want)
	}
}

func TestSwiftName(t *testing.T) {
	if NewSwift().Name() != "swift" {
		t.Error("name")
	}
}
