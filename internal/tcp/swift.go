package tcp

import (
	"mltcp/internal/sim"
)

// Swift implements a simplified Swift (Kumar et al., SIGCOMM 2020), the
// delay-based congestion control §6 groups with TIMELY and DX: the sender
// compares each RTT sample against a target delay; below target it grows
// additively (the step MLTCP scales), above target it backs off
// multiplicatively in proportion to the excess, at most once per RTT.
// Delay-based control needs no packet loss, so a Swift bottleneck runs
// with short queues — the regime RDMA-style ML clusters prefer.
type Swift struct {
	// Target is the end-to-end delay setpoint. Zero uses 4× the first
	// RTT sample (a base-RTT-relative target).
	Target sim.Time
	// AI is the additive increase in packets per RTT (default 1).
	AI float64
	// Beta caps the multiplicative decrease per event (default 0.8
	// retained fraction at maximum overshoot).
	Beta float64

	baseRTT      sim.Time
	lastDecrease sim.Time
}

// NewSwift returns Swift with default parameters.
func NewSwift() *Swift { return &Swift{AI: 1, Beta: 0.8} }

// Name implements CongestionControl.
func (*Swift) Name() string { return "swift" }

// OnInit implements CongestionControl.
func (s *Swift) OnInit(Window) {
	s.baseRTT = 0
	s.lastDecrease = -sim.Second
}

func (s *Swift) target() sim.Time {
	if s.Target > 0 {
		return s.Target
	}
	return 4 * s.baseRTT
}

// OnAck implements CongestionControl.
func (s *Swift) OnAck(w Window, ev AckEvent) {
	if ev.RTT > 0 && (s.baseRTT == 0 || ev.RTT < s.baseRTT) {
		s.baseRTT = ev.RTT
	}
	if s.baseRTT == 0 {
		// No sample yet: grow like slow start would.
		w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets))
		return
	}
	target := s.target()
	if ev.RTT > 0 && ev.RTT > target {
		// Over target: proportional decrease, once per RTT.
		if ev.Now-s.lastDecrease >= ev.RTT {
			excess := sim.Ratio(ev.RTT-target, ev.RTT)
			factor := 1 - (1-s.Beta)*excess
			cwnd := w.Cwnd() * factor
			if cwnd < MinCwnd {
				cwnd = MinCwnd
			}
			w.SetSsthresh(cwnd)
			w.SetCwnd(cwnd)
			s.lastDecrease = ev.Now
		}
		return
	}
	// At or below target: additive increase of AI packets per RTT,
	// spread across the window's ACKs. (Slow start is implicit: with a
	// huge initial ssthresh the early exponential phase is harmless
	// because the first over-target RTT caps it.)
	if ev.InSlowStart {
		w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets))
		return
	}
	w.SetCwnd(w.Cwnd() + s.AI*float64(ev.AckedPackets)/w.Cwnd())
}

// OnPacketLoss implements CongestionControl: loss still halves (Swift
// retains a loss response as a safety net).
func (s *Swift) OnPacketLoss(w Window, now sim.Time) {
	(&Reno{}).OnPacketLoss(w, now)
	s.lastDecrease = now
}

// OnTimeout implements CongestionControl.
func (s *Swift) OnTimeout(w Window, now sim.Time) {
	(&Reno{}).OnTimeout(w, now)
	s.lastDecrease = now
}
