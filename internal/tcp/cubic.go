package tcp

import (
	"math"

	"mltcp/internal/sim"
)

// Cubic implements TCP CUBIC (Ha, Rhee, Xu 2008): after a loss the window
// grows along a cubic curve W(t) = C·(t−K)³ + Wmax anchored at the
// pre-loss window, giving rapid recovery, a plateau near Wmax, and probing
// beyond it. The TCP-friendly region is included so CUBIC never grows
// slower than Reno would.
type Cubic struct {
	c    float64 // scaling constant, conventionally 0.4
	beta float64 // multiplicative decrease factor, conventionally 0.7

	wMax       float64
	epochStart sim.Time
	originCwnd float64
	k          float64 // seconds to return to wMax

	// Reno-friendly tracking.
	ackCount float64
	tcpCwnd  float64
}

// NewCubic returns CUBIC with the standard constants (C=0.4, beta=0.7).
func NewCubic() *Cubic { return &Cubic{c: 0.4, beta: 0.7} }

// Name implements CongestionControl.
func (*Cubic) Name() string { return "cubic" }

// OnInit implements CongestionControl.
func (cu *Cubic) OnInit(Window) { cu.reset() }

func (cu *Cubic) reset() {
	cu.wMax = 0
	cu.epochStart = -1
	cu.ackCount = 0
	cu.tcpCwnd = 0
}

// OnAck implements CongestionControl.
func (cu *Cubic) OnAck(w Window, ev AckEvent) {
	if ev.AckedPackets == 0 {
		return
	}
	if ev.InSlowStart {
		w.SetCwnd(w.Cwnd() + float64(ev.AckedPackets))
		return
	}
	cwnd := w.Cwnd()
	now := ev.Now
	if cu.epochStart < 0 {
		// New congestion-avoidance epoch.
		cu.epochStart = now
		cu.originCwnd = cwnd
		if cwnd < cu.wMax {
			cu.k = math.Cbrt((cu.wMax - cwnd) / cu.c)
		} else {
			cu.k = 0
			cu.wMax = cwnd
		}
		cu.ackCount = 0
		cu.tcpCwnd = cwnd
	}
	t := (now - cu.epochStart).Seconds()
	target := cu.c*math.Pow(t-cu.k, 3) + cu.wMax

	// TCP-friendly window (what Reno would have by now).
	cu.ackCount += float64(ev.AckedPackets)
	cu.tcpCwnd = cu.originCwnd + 3*(1-cu.beta)/(1+cu.beta)*(cu.ackCount/cwnd)
	if cu.tcpCwnd > target {
		target = cu.tcpCwnd
	}

	if target > cwnd {
		// Spread the climb over the next RTT's worth of ACKs.
		w.SetCwnd(cwnd + (target-cwnd)/cwnd*float64(ev.AckedPackets))
	} else {
		// At or above target: probe very slowly.
		w.SetCwnd(cwnd + 0.01*float64(ev.AckedPackets)/cwnd)
	}
}

// OnPacketLoss implements CongestionControl.
func (cu *Cubic) OnPacketLoss(w Window, _ sim.Time) {
	cwnd := w.Cwnd()
	cu.epochStart = -1
	if cwnd < cu.wMax {
		// Fast convergence: release bandwidth faster when the
		// available capacity shrank.
		cu.wMax = cwnd * (1 + cu.beta) / 2
	} else {
		cu.wMax = cwnd
	}
	ss := cwnd * cu.beta
	if ss < MinCwnd {
		ss = MinCwnd
	}
	w.SetSsthresh(ss)
	w.SetCwnd(ss)
}

// OnTimeout implements CongestionControl.
func (cu *Cubic) OnTimeout(w Window, _ sim.Time) {
	cu.reset()
	ss := w.Cwnd() * cu.beta
	if ss < MinCwnd {
		ss = MinCwnd
	}
	w.SetSsthresh(ss)
	w.SetCwnd(1)
}
