package tcp

import (
	"testing"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// testNet builds a small dumbbell for transport tests: 100 Mbps bottleneck,
// 1 Gbps edges, ~208µs base RTT.
func testNet(eng *sim.Engine, pairs int, queue func() netsim.Queue) *netsim.Dumbbell {
	return netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       pairs,
		HostRate:        1 * units.Gbps,
		BottleneckRate:  100 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
		BottleneckQueue: queue,
	})
}

func TestSingleFlowTransfersAllBytes(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	const total = 5_000_000
	var drainedAt sim.Time
	f.Sender.Drained(func(now sim.Time) { drainedAt = now })
	f.Sender.Write(total)
	eng.RunUntil(10 * sim.Second)

	if got := f.Receiver.BytesReceived(); got != total {
		t.Fatalf("received %d bytes, want %d", got, total)
	}
	if f.Sender.TotalBytesAcked() != total {
		t.Fatalf("acked %d, want %d", f.Sender.TotalBytesAcked(), total)
	}
	if drainedAt == 0 {
		t.Fatal("drained callback never fired")
	}
	// 5MB at 100Mbps is 0.4s minimum; slow start adds some.
	if drainedAt < 400*sim.Millisecond || drainedAt > 1200*sim.Millisecond {
		t.Errorf("drain at %v, want ~0.4-1.2s", drainedAt)
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	const total = 20_000_000
	var drainedAt sim.Time
	f.Sender.Drained(func(now sim.Time) { drainedAt = now })
	f.Sender.Write(total)
	eng.RunUntil(30 * sim.Second)
	if drainedAt == 0 {
		t.Fatal("transfer did not finish")
	}
	gput := float64(total) * 8 / drainedAt.Seconds()
	// Goodput should be at least 85% of the 100 Mbps bottleneck
	// (header overhead is ~2.7%, slow start a bit more).
	if gput < 85e6 {
		t.Errorf("goodput = %.1f Mbps, want >= 85", gput/1e6)
	}
}

func TestRTTEstimation(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	f.Sender.Write(100_000)
	eng.RunUntil(time500ms)
	srtt := f.Sender.SRTT()
	// Base RTT: 2 host links each way + bottleneck each way
	// = 2*(10+10+30)µs propagation + serialization; a full 100-packet
	// bottleneck buffer adds up to 12ms of queueing delay.
	if srtt < 100*sim.Microsecond || srtt > 13*sim.Millisecond {
		t.Errorf("srtt = %v, want ~100µs-13ms", srtt)
	}
	if f.Sender.RTO() < 10*sim.Millisecond {
		t.Errorf("rto = %v, below MinRTO", f.Sender.RTO())
	}
}

const time500ms = 500 * sim.Millisecond

func TestFastRetransmitRecoversFromLoss(t *testing.T) {
	eng := sim.New()
	// Small bottleneck queue forces drops during slow start.
	net := testNet(eng, 1, func() netsim.Queue { return netsim.NewDropTail(20 * netsim.DefaultMTU) })
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	const total = 10_000_000
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	f.Sender.Write(total)
	eng.RunUntil(30 * sim.Second)
	st := f.Sender.Stats()
	if !done {
		t.Fatalf("transfer incomplete: acked %d/%d (stats %+v)", f.Sender.TotalBytesAcked(), total, st)
	}
	if st.FastRecoveries == 0 {
		t.Error("expected at least one fast recovery with a 20-packet buffer")
	}
	if f.Receiver.BytesReceived() != total {
		t.Errorf("received %d, want %d", f.Receiver.BytesReceived(), total)
	}
}

func TestTimeoutRecovery(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	// Random heavy wire loss on the bottleneck to provoke timeouts
	// (dup-ACK recovery handles isolated drops; bursts need the RTO).
	net.Forward.LossProb = 0.30
	net.Forward.RNG = sim.NewRNG(3)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	const total = 300_000
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	f.Sender.Write(total)
	eng.RunUntil(120 * sim.Second)
	if !done {
		t.Fatalf("transfer incomplete under loss: acked %d/%d, stats %+v",
			f.Sender.TotalBytesAcked(), total, f.Sender.Stats())
	}
	if f.Receiver.BytesReceived() != total {
		t.Errorf("received %d, want %d", f.Receiver.BytesReceived(), total)
	}
}

func TestTwoRenoFlowsShareFairly(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 2, nil)
	f1 := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	f2 := NewFlow(eng, 2, net.Left[1], net.Right[1], NewReno(), Config{})
	// Saturating demands.
	f1.Sender.Write(1 << 40)
	f2.Sender.Write(1 << 40)
	eng.RunUntil(20 * sim.Second)
	b1 := float64(f1.Sender.TotalBytesAcked())
	b2 := float64(f2.Sender.TotalBytesAcked())
	ratio := b1 / b2
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("long-run share ratio = %.2f (b1=%.0f b2=%.0f), want ~1", ratio, b1, b2)
	}
	// Combined they should saturate the link.
	gput := (b1 + b2) * 8 / 20
	if gput < 85e6 {
		t.Errorf("aggregate goodput = %.1f Mbps, want >= 85", gput/1e6)
	}
}

func TestIterativeWritesAndDrainCallbacks(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	const perIter = 500_000
	iters := 0
	f.Sender.Drained(func(now sim.Time) {
		iters++
		if iters < 5 {
			// Simulate a compute phase before the next iteration.
			eng.After(50*sim.Millisecond, func(*sim.Engine) {
				f.Sender.Write(perIter)
			})
		}
	})
	f.Sender.Write(perIter)
	eng.RunUntil(60 * sim.Second)
	if iters != 5 {
		t.Fatalf("completed %d iterations, want 5", iters)
	}
	if got := f.Receiver.BytesReceived(); got != 5*perIter {
		t.Errorf("received %d, want %d", got, 5*perIter)
	}
}

func TestSlowStartAfterIdleResetsCwnd(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	f.Sender.Write(2_000_000)
	var cwndAfterBatch float64
	f.Sender.Drained(func(now sim.Time) {
		if cwndAfterBatch == 0 {
			cwndAfterBatch = f.Sender.Cwnd()
			eng.After(sim.Second, func(*sim.Engine) { // long idle
				f.Sender.Write(1000)
			})
		}
	})
	eng.RunUntil(5 * sim.Second)
	if cwndAfterBatch <= DefaultInitialCwnd {
		t.Skipf("cwnd did not grow beyond IW (%v); cannot observe reset", cwndAfterBatch)
	}
	if got := f.Sender.Cwnd(); got > cwndAfterBatch/2 && got > 2*DefaultInitialCwnd {
		t.Errorf("cwnd after idle = %v, want reset near IW (was %v)", got, cwndAfterBatch)
	}
}

func TestDisableSlowStartAfterIdle(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(),
		Config{DisableSlowStartAfterIdle: true})
	f.Sender.Write(2_000_000)
	var cwndAfterBatch, cwndAfterIdleWrite float64
	f.Sender.Drained(func(now sim.Time) {
		if cwndAfterBatch == 0 {
			cwndAfterBatch = f.Sender.Cwnd()
			eng.After(sim.Second, func(*sim.Engine) {
				f.Sender.Write(1000)
				cwndAfterIdleWrite = f.Sender.Cwnd()
			})
		}
	})
	eng.RunUntil(5 * sim.Second)
	if cwndAfterIdleWrite != cwndAfterBatch {
		t.Errorf("cwnd changed across idle with reset disabled: %v -> %v",
			cwndAfterBatch, cwndAfterIdleWrite)
	}
}

func TestRenoWindowDynamics(t *testing.T) {
	// Unit-test the CC in isolation with a fake window.
	w := &fakeWindow{cwnd: 10, ssthresh: 8}
	r := NewReno()
	r.OnAck(w, AckEvent{AckedPackets: 1, InSlowStart: false})
	if want := 10.1; !near(w.cwnd, want, 1e-9) {
		t.Errorf("CA ack: cwnd = %v, want %v", w.cwnd, want)
	}
	w2 := &fakeWindow{cwnd: 4, ssthresh: 100}
	r.OnAck(w2, AckEvent{AckedPackets: 2, InSlowStart: true})
	if w2.cwnd != 6 {
		t.Errorf("SS ack: cwnd = %v, want 6", w2.cwnd)
	}
	r.OnPacketLoss(w, 0)
	if !near(w.cwnd, 5.05, 1e-9) || !near(w.ssthresh, 5.05, 1e-9) {
		t.Errorf("loss: cwnd=%v ssthresh=%v, want both 5.05", w.cwnd, w.ssthresh)
	}
	r.OnTimeout(w, 0)
	if w.cwnd != 1 {
		t.Errorf("timeout: cwnd = %v, want 1", w.cwnd)
	}
	w3 := &fakeWindow{cwnd: 2.5}
	r.OnPacketLoss(w3, 0)
	if w3.cwnd != MinCwnd {
		t.Errorf("loss floor: cwnd = %v, want %v", w3.cwnd, MinCwnd)
	}
}

type fakeWindow struct {
	cwnd, ssthresh float64
	srtt           sim.Time
}

func (f *fakeWindow) Cwnd() float64         { return f.cwnd }
func (f *fakeWindow) SetCwnd(c float64)     { f.cwnd = c }
func (f *fakeWindow) Ssthresh() float64     { return f.ssthresh }
func (f *fakeWindow) SetSsthresh(s float64) { f.ssthresh = s }
func (f *fakeWindow) SRTT() sim.Time        { return f.srtt }
func (f *fakeWindow) InSlowStart() bool     { return f.cwnd < f.ssthresh }

func near(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func TestPFabricPrioTag(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{Prio: PFabricPrio})
	var prios []int64
	net.Forward.AddTap(func(_ sim.Time, p *netsim.Packet) {
		if !p.Ack {
			prios = append(prios, p.Prio)
		}
	})
	f.Sender.Write(200_000)
	eng.RunUntil(5 * sim.Second)
	if len(prios) == 0 {
		t.Fatal("no data packets observed")
	}
	if prios[0] != 200_000 {
		t.Errorf("first packet prio = %d, want 200000 (full remaining)", prios[0])
	}
	last := prios[len(prios)-1]
	if last >= prios[0] {
		t.Errorf("priority did not decrease: first %d, last %d", prios[0], last)
	}
}

func TestPIASBandDemotion(t *testing.T) {
	band := PIASBands([]int64{100_000, 1_000_000})
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{
		Band: band,
	})
	maxBand := 0
	net.Forward.AddTap(func(_ sim.Time, p *netsim.Packet) {
		if !p.Ack && p.Band > maxBand {
			maxBand = p.Band
		}
	})
	f.Sender.Write(2_000_000)
	eng.RunUntil(10 * sim.Second)
	if maxBand != 2 {
		t.Errorf("max band = %d, want 2 (demoted past both thresholds)", maxBand)
	}
}

func TestSenderValidation(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	for name, fn := range map[string]func(){
		"nil-cc": func() {
			NewSender(eng, net.Left[0], 99, net.Right[0].ID(), nil, Config{})
		},
		"bad-mss": func() {
			NewSender(eng, net.Left[0], 98, net.Right[0].ID(), NewReno(), Config{MSS: 99999})
		},
		"zero-write": func() {
			f := NewFlow(eng, 97, net.Left[0], net.Right[0], NewReno(), Config{})
			f.Sender.Write(0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
