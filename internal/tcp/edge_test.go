package tcp

import (
	"testing"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
)

// blackholeQueue drops everything after admitting the first n packets —
// for forcing repeated RTOs deterministically.
type blackholeQueue struct {
	netsim.Queue
	admit int
}

func (q *blackholeQueue) Enqueue(p *netsim.Packet) bool {
	if q.admit <= 0 {
		return false
	}
	q.admit--
	return q.Queue.Enqueue(p)
}

func TestRTOExponentialBackoff(t *testing.T) {
	eng := sim.New()
	bh := &blackholeQueue{Queue: netsim.NewDropTail(100 * netsim.DefaultMTU), admit: 1}
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       1,
		HostRate:        1 * gbps,
		BottleneckRate:  100 * mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
		BottleneckQueue: func() netsim.Queue { return bh },
	})
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	// Two packets: the first delivers (establishing nothing special),
	// the second and all retransmits black-hole. The RTO must double
	// each firing.
	f.Sender.Write(2 * 1460)
	var timeouts []sim.Time
	prevTimeouts := int64(0)
	for ts := sim.Millisecond; ts < 4*sim.Second; ts += sim.Millisecond {
		eng.At(ts, func(e *sim.Engine) {
			if n := f.Sender.Stats().Timeouts; n > prevTimeouts {
				prevTimeouts = n
				timeouts = append(timeouts, e.Now())
			}
		})
	}
	eng.RunUntil(4 * sim.Second)
	if len(timeouts) < 3 {
		t.Fatalf("only %d timeouts observed", len(timeouts))
	}
	// Consecutive timeout gaps must grow ~2x (within the 1ms sampling).
	g1 := timeouts[1] - timeouts[0]
	g2 := timeouts[2] - timeouts[1]
	ratio := float64(g2) / float64(g1)
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("backoff ratio = %.2f (gaps %v, %v), want ~2", ratio, g1, g2)
	}
}

func TestStaleAckIgnored(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	f.Sender.Write(100_000)
	eng.RunUntil(sim.Second)
	acked := f.Sender.TotalBytesAcked()
	if acked != 100_000 {
		t.Fatalf("setup: acked %d", acked)
	}
	cwnd := f.Sender.Cwnd()
	// Deliver a stale ACK (below snd_una): must be ignored entirely.
	f.Sender.HandlePacket(eng, &netsim.Packet{Flow: 1, Ack: true, AckNo: 50})
	if f.Sender.TotalBytesAcked() != acked || f.Sender.Cwnd() != cwnd {
		t.Error("stale ACK mutated sender state")
	}
}

func TestDupAckWithNothingOutstandingIgnored(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	f.Sender.Write(100_000)
	eng.RunUntil(sim.Second)
	before := f.Sender.Stats()
	// Duplicate ACKs at snd_una with an empty pipe must not trigger
	// fast retransmit.
	for i := 0; i < 5; i++ {
		f.Sender.HandlePacket(eng, &netsim.Packet{Flow: 1, Ack: true, AckNo: 100_000})
	}
	after := f.Sender.Stats()
	if after.FastRecoveries != before.FastRecoveries || after.Retransmits != before.Retransmits {
		t.Errorf("idle dup ACKs triggered recovery: %+v -> %+v", before, after)
	}
}

func TestSenderRejectsDataPacket(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	defer func() {
		if recover() == nil {
			t.Error("data packet at sender did not panic")
		}
	}()
	f.Sender.HandlePacket(eng, &netsim.Packet{Flow: 1, Payload: 100})
}

func TestReceiverRejectsAck(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	defer func() {
		if recover() == nil {
			t.Error("ACK at receiver did not panic")
		}
	}()
	f.Receiver.HandlePacket(eng, &netsim.Packet{Flow: 1, Ack: true})
}
