package tcp

import (
	"testing"
	"testing/quick"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
)

// Property: whatever random loss the wire inflicts, TCP delivers exactly
// the written bytes, in order, exactly once — the receiver's in-order edge
// equals the application demand once the sender reports drained.
func TestTransferConservationUnderRandomLoss(t *testing.T) {
	prop := func(seed uint16, lossPct uint8, sizeKB uint8) bool {
		loss := float64(lossPct%25) / 100 // 0–24%
		total := int64(sizeKB%64+1) * 10_000
		eng := sim.New()
		net := testNet(eng, 1, nil)
		net.Forward.LossProb = loss
		net.Forward.RNG = sim.NewRNG(uint64(seed))
		net.Reverse.LossProb = loss / 2 // ACK loss too
		net.Reverse.RNG = sim.NewRNG(uint64(seed) + 1)
		f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
		done := false
		f.Sender.Drained(func(sim.Time) { done = true })
		f.Sender.Write(total)
		eng.RunUntil(300 * sim.Second)
		return done && f.Receiver.BytesReceived() == total && f.Sender.TotalBytesAcked() == total
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the receiver's in-order edge never exceeds what the sender has
// transmitted, and ACK numbers are monotone.
func TestAckMonotonicityProperty(t *testing.T) {
	prop := func(seed uint16) bool {
		eng := sim.New()
		net := testNet(eng, 1, func() netsim.Queue { return netsim.NewDropTail(10 * netsim.DefaultMTU) })
		net.Forward.LossProb = 0.05
		net.Forward.RNG = sim.NewRNG(uint64(seed))
		f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
		ok := true
		var lastAck int64 = -1
		f.Sender.OnAckHook(func(ev AckEvent) {
			acked := f.Sender.TotalBytesAcked()
			if acked < lastAck {
				ok = false
			}
			lastAck = acked
			if acked > 2_000_000 {
				ok = ok && acked <= 2_000_000
			}
		})
		f.Sender.Write(2_000_000)
		eng.RunUntil(60 * sim.Second)
		return ok && f.Receiver.BytesReceived() <= 2_000_000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: cwnd always stays within [1, MaxCwnd] across arbitrary
// loss patterns and all three congestion controls.
func TestCwndBoundsProperty(t *testing.T) {
	ccs := []func() CongestionControl{
		func() CongestionControl { return NewReno() },
		func() CongestionControl { return NewCubic() },
		func() CongestionControl { return NewDCTCP() },
	}
	prop := func(seed uint16, which uint8) bool {
		eng := sim.New()
		net := testNet(eng, 1, nil)
		net.Forward.LossProb = 0.08
		net.Forward.RNG = sim.NewRNG(uint64(seed))
		f := NewFlow(eng, 1, net.Left[0], net.Right[0], ccs[int(which)%len(ccs)](),
			Config{MaxCwnd: 500})
		ok := true
		f.Sender.OnAckHook(func(AckEvent) {
			c := f.Sender.Cwnd()
			if c < 1 || c > 500 {
				ok = false
			}
		})
		f.Sender.Write(3_000_000)
		eng.RunUntil(60 * sim.Second)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSampleCwnd(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	tr := SampleCwnd(f.Sender, 10*sim.Millisecond)
	f.Sender.Write(5_000_000)
	eng.RunUntil(2 * sim.Second)
	samples := tr.Samples()
	if len(samples) < 5 {
		t.Fatalf("only %d samples", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At-samples[i-1].At < 10*sim.Millisecond {
			t.Fatalf("samples %d closer than interval: %v -> %v", i, samples[i-1].At, samples[i].At)
		}
	}
	if tr.Max() <= DefaultInitialCwnd {
		t.Errorf("max cwnd %v never grew beyond IW", tr.Max())
	}
	if len(tr.Values()) != len(samples) {
		t.Error("Values length mismatch")
	}
}

func TestSampleCwndChainsHooks(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	hookCalls := 0
	f.Sender.OnAckHook(func(AckEvent) { hookCalls++ })
	SampleCwnd(f.Sender, time500ms)
	f.Sender.Write(100_000)
	eng.RunUntil(time500ms)
	if hookCalls == 0 {
		t.Error("pre-existing ACK hook was lost")
	}
}

func TestSampleCwndValidation(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero interval")
		}
	}()
	SampleCwnd(f.Sender, 0)
}
