package tcp

import (
	"mltcp/internal/units"
	"testing"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
)

func TestPacingTransfersAllBytes(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{Pacing: true})
	const total = 8_000_000
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	f.Sender.Write(total)
	eng.RunUntil(30 * sim.Second)
	if !done || f.Receiver.BytesReceived() != total {
		t.Fatalf("paced transfer incomplete: %d/%d", f.Receiver.BytesReceived(), total)
	}
}

func TestPacingReducesBurstLossAfterIdle(t *testing.T) {
	// The scenario pacing exists for: a persistent connection
	// (slow-start-after-idle disabled) resumes after a compute phase
	// with a large inherited window. Unpaced, the whole window bursts
	// into a shallow queue at the edge rate and overflows; paced, it is
	// spread over one SRTT. Slow-start overshoot loss in the *first*
	// batch is identical either way — compare retransmits accumulated
	// after the second batch begins.
	run := func(pacing bool) int64 {
		eng := sim.New()
		// A long-RTT path (BDP ~85 packets) with a 40-packet buffer:
		// the inherited window far exceeds what the queue can absorb
		// in one burst, but paced over an SRTT it fits.
		net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
			HostPairs:       1,
			HostRate:        1 * units.Gbps,
			BottleneckRate:  100 * units.Mbps,
			HostDelay:       10 * sim.Microsecond,
			BottleneckDelay: 5 * sim.Millisecond,
			BottleneckQueue: func() netsim.Queue { return netsim.NewDropTail(40 * netsim.DefaultMTU) },
		})
		f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(),
			Config{Pacing: pacing, DisableSlowStartAfterIdle: true})
		var afterFirst int64 = -1
		batches := 0
		f.Sender.Drained(func(now sim.Time) {
			batches++
			if batches == 1 {
				afterFirst = f.Sender.Stats().Retransmits
				eng.After(100*sim.Millisecond, func(*sim.Engine) {
					f.Sender.Write(2_000_000)
				})
			}
		})
		f.Sender.Write(2_000_000)
		eng.RunUntil(20 * sim.Second)
		if batches < 2 {
			t.Fatalf("pacing=%v: second batch incomplete", pacing)
		}
		return f.Sender.Stats().Retransmits - afterFirst
	}
	burst := run(false)
	paced := run(true)
	if paced >= burst {
		t.Errorf("pacing did not reduce post-idle burst retransmits: paced %d vs unpaced %d",
			paced, burst)
	}
}

func TestPacingSpacesEmissions(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{Pacing: true})
	var emissions []sim.Time
	net.Left[0].Uplink().AddTap(func(now sim.Time, p *netsim.Packet) {
		if !p.Ack {
			emissions = append(emissions, now)
		}
	})
	f.Sender.Write(3_000_000)
	eng.RunUntil(2 * sim.Second)
	if len(emissions) < 100 {
		t.Fatalf("only %d emissions", len(emissions))
	}
	// After SRTT is established, back-to-back same-instant bursts should
	// be rare: count emission pairs closer than 1µs in the steady
	// region.
	tight := 0
	for i := len(emissions) / 2; i < len(emissions)-1; i++ {
		if emissions[i+1]-emissions[i] < sim.Microsecond {
			tight++
		}
	}
	if frac := float64(tight) / float64(len(emissions)/2); frac > 0.2 {
		t.Errorf("%.0f%% of steady emissions are back-to-back; pacing ineffective", frac*100)
	}
}

func TestPacingValidation(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("negative gain did not panic")
		}
	}()
	NewFlow(eng, 9, net.Left[0], net.Right[0], NewReno(), Config{Pacing: true, PacingGain: -1})
}

func TestLinkJitterPreservesOrderAndDelivers(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	net.Forward.JitterStd = 50 * sim.Microsecond
	net.Forward.RNG = sim.NewRNG(7)
	// A FIFO link must never reorder even with jitter; the receiver's
	// spurious-retransmit count stays at zero if ordering held.
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	const total = 5_000_000
	done := false
	f.Sender.Drained(func(sim.Time) { done = true })
	f.Sender.Write(total)
	eng.RunUntil(30 * sim.Second)
	if !done || f.Receiver.BytesReceived() != total {
		t.Fatalf("jittered transfer incomplete: %d/%d", f.Receiver.BytesReceived(), total)
	}
}

func TestQueueMonitor(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	m := netsim.NewQueueMonitor(eng, net.Forward, 10*sim.Millisecond,
		100*sim.Millisecond, 2*sim.Second)
	f := NewFlow(eng, 1, net.Left[0], net.Right[0], NewReno(), Config{})
	f.Sender.Write(1 << 40)
	eng.RunUntil(2 * sim.Second)
	if len(m.Samples()) != 190 {
		t.Fatalf("samples = %d, want 190", len(m.Samples()))
	}
	if m.Max() == 0 {
		t.Error("queue never occupied under a saturating flow")
	}
	if m.Mean() <= 0 || m.Mean() > float64(m.Max()) {
		t.Errorf("mean %v outside (0, max %v]", m.Mean(), m.Max())
	}
}

func TestQueueMonitorValidation(t *testing.T) {
	eng := sim.New()
	net := testNet(eng, 1, nil)
	for name, fn := range map[string]func(){
		"zero-interval": func() { netsim.NewQueueMonitor(eng, net.Forward, 0, 0, sim.Second) },
		"empty-window":  func() { netsim.NewQueueMonitor(eng, net.Forward, sim.Millisecond, sim.Second, sim.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
