package analysis

import (
	"fmt"
	"math"

	"mltcp/internal/sim"
)

// MultiParams extends the two-job analysis of §4 to N identical jobs, the
// generalization §5 sketches: "The dimension of gradient descent space
// increases with the number of jobs ... the loss becomes a function of the
// overlap across all [pairs]; the relative shifts for each job, calculated
// from the gradient of this function".
type MultiParams struct {
	// Params carries Slope/Intercept/Alpha/Period for every job.
	Params
	// N is the number of identical jobs (N·Alpha ≤ 1 for a fully
	// interleaved schedule to exist).
	N int
}

func (m MultiParams) validateN() {
	m.validate()
	if m.N < 2 {
		panic(fmt.Sprintf("analysis: MultiParams needs N >= 2, got %d", m.N))
	}
}

// TotalLoss is the sum of the pairwise Loss over all job pairs at the
// given offsets — the N-job loss landscape whose gradient drives the
// multi-job descent.
func (m MultiParams) TotalLoss(offsets []sim.Time) float64 {
	m.validateN()
	if len(offsets) != m.N {
		panic(fmt.Sprintf("analysis: %d offsets for N=%d", len(offsets), m.N))
	}
	var total float64
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			total += m.Loss(offsets[j] - offsets[i])
		}
	}
	return total
}

// DescendMulti runs the multi-job gradient descent: every iteration, each
// overlapping pair contributes its pairwise Shift, split between the two
// jobs (the earlier job's next iteration advances, the later one's
// recedes — together the gap widens by exactly Shift as in the two-job
// analysis). It returns the trajectory of offset vectors, including the
// start.
func (m MultiParams) DescendMulti(offsets []sim.Time, iters int) [][]sim.Time {
	m.validateN()
	if len(offsets) != m.N {
		panic(fmt.Sprintf("analysis: %d offsets for N=%d", len(offsets), m.N))
	}
	cur := append([]sim.Time(nil), offsets...)
	traj := [][]sim.Time{append([]sim.Time(nil), cur...)}
	for it := 0; it < iters; it++ {
		delta := make([]sim.Time, m.N)
		for i := 0; i < m.N; i++ {
			for j := 0; j < m.N; j++ {
				if i == j {
					continue
				}
				// Gap from i to j, normalized into [0, T).
				d := m.norm(cur[j] - cur[i])
				if d > 0 && d < sim.FromSeconds(m.Alpha*m.Period.Seconds()) {
					// j trails i inside the overlap window:
					// the pair separates by Shift(d).
					s := m.Shift(d)
					delta[i] -= s / 2
					delta[j] += s / 2
				}
			}
		}
		for i := range cur {
			cur[i] += delta[i]
		}
		traj = append(traj, append([]sim.Time(nil), cur...))
	}
	return traj
}

func (m MultiParams) norm(d sim.Time) sim.Time {
	T := m.Period
	d %= T
	if d < 0 {
		d += T
	}
	return d
}

// InterleavedMulti reports whether every pair of offsets is disjoint
// (within tol).
func (m MultiParams) InterleavedMulti(offsets []sim.Time, tol sim.Time) bool {
	m.validateN()
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			if !m.Interleaved(offsets[j]-offsets[i], tol) {
				return false
			}
		}
	}
	return true
}

// FeasibleMulti reports whether N identical jobs can interleave at all:
// N·a ≤ 1.
func (m MultiParams) FeasibleMulti() bool {
	m.validateN()
	return float64(m.N)*m.Alpha <= 1+1e-12
}

// ConvergenceIterationMulti returns the first trajectory index from which
// every configuration is fully interleaved, or -1.
func (m MultiParams) ConvergenceIterationMulti(traj [][]sim.Time, tol sim.Time) int {
	for i := range traj {
		ok := true
		for _, offs := range traj[i:] {
			if !m.InterleavedMulti(offs, tol) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// MinPairGap returns the smallest circular pairwise gap (in seconds) — a
// measure of how much slack the converged schedule has against noise.
func (m MultiParams) MinPairGap(offsets []sim.Time) float64 {
	m.validateN()
	best := math.Inf(1)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if i == j {
				continue
			}
			if d := m.norm(offsets[j] - offsets[i]).Seconds(); d < best {
				best = d
			}
		}
	}
	return best
}
