// Package analysis implements §4 of the paper: the Shift function created
// by MLTCP's unequal bandwidth sharing (Equation 3), the Loss function
// whose negative integral it is (Equation 4), the gradient-descent view of
// iteration-by-iteration convergence, and the Gaussian-noise approximation
// error bound.
package analysis

import (
	"fmt"
	"math"

	"mltcp/internal/core"
	"mltcp/internal/sim"
)

// Params describes the two-identical-jobs setting of Figure 5: jobs with
// ideal iteration time T whose communication phase lasts a·T at full rate,
// using the linear aggressiveness function Slope·r + Intercept.
type Params struct {
	// Slope and Intercept parameterize Equation 2.
	Slope, Intercept float64
	// Alpha is a, the communication fraction of the iteration (0 < a <= 1/2
	// for an interleaved schedule of two jobs to exist).
	Alpha float64
	// Period is T, the ideal iteration time.
	Period sim.Time
}

// DefaultParams returns the paper's constants with the given job shape.
func DefaultParams(alpha float64, period sim.Time) Params {
	return Params{Slope: core.DefaultSlope, Intercept: core.DefaultIntercept, Alpha: alpha, Period: period}
}

func (p Params) validate() {
	if p.Slope <= 0 || p.Intercept <= 0 {
		panic(fmt.Sprintf("analysis: Slope and Intercept must be positive (got %v, %v)", p.Slope, p.Intercept))
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		panic(fmt.Sprintf("analysis: Alpha must be in (0, 1], got %v", p.Alpha))
	}
	if p.Period <= 0 {
		panic("analysis: Period must be positive")
	}
}

// rawShift evaluates Equation 3 for delta in [0, aT], both in seconds:
//
//	Shift(Δ) = Slope·Δ·(aT − Δ) / (aT·Intercept + Δ·Slope)
func (p Params) rawShift(delta float64) float64 {
	aT := p.Alpha * p.Period.Seconds()
	return p.Slope * delta * (aT - delta) / (aT*p.Intercept + delta*p.Slope)
}

// Shift returns the per-iteration change in the start-time difference
// between the two jobs when the current difference is delta. The domain is
// extended beyond Equation 3's overlap window [0, aT]:
//
//   - Δ (mod T) in [0, aT]: the leader's comm overlaps the follower's from
//     the front; the gap widens by Equation 3 (positive shift).
//   - Δ (mod T) in [aT, T−aT]: phases are disjoint; no shift (the minimum
//     plateau of the loss).
//   - Δ (mod T) in [T−aT, T]: the follower's comm overlaps the leader's
//     next iteration from behind; by symmetry the gap shrinks,
//     Shift = −Shift(T − Δ).
func (p Params) Shift(delta sim.Time) sim.Time {
	p.validate()
	T := p.Period.Seconds()
	aT := p.Alpha * T
	d := math.Mod(delta.Seconds(), T)
	if d < 0 {
		d += T
	}
	switch {
	case d <= aT:
		return sim.FromSeconds(p.rawShift(d))
	case d >= T-aT:
		return sim.FromSeconds(-p.rawShift(T - d))
	default:
		return 0
	}
}

// Loss evaluates Equation 4, the negative integral of the shift from 0 to
// delta, in seconds² (the natural unit of ∫shift dΔ). It is 0 at Δ=0,
// decreases while the shift is positive, is flat on the interleaved
// plateau, and rises back toward 0 as Δ approaches T — the shape of
// Figure 5(c).
func (p Params) Loss(delta sim.Time) float64 {
	p.validate()
	const steps = 2000
	// Test the integer nanosecond count, not its float image: Δ=0 is an
	// exact integer fact and should not depend on float conversion.
	if delta == 0 {
		return 0
	}
	d := delta.Seconds()
	// Simpson's rule over [0, d].
	h := d / steps
	sum := p.shiftSec(0) + p.shiftSec(d)
	for i := 1; i < steps; i++ {
		x := float64(i) * h
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * p.shiftSec(x)
	}
	integral := sum * h / 3
	return -integral
}

func (p Params) shiftSec(d float64) float64 {
	return p.Shift(sim.FromSeconds(d)).Seconds()
}

// LossClosedForm evaluates Equation 4 analytically. Substituting
// u = aT·I + S·x into −∫ S·x(aT−x)/(aT·I + S·x) dx gives
//
//	−(1/S²)·[ −u²/2 + (K+b)·u − bK·ln u ]  from u=b to u=b+SΔ,
//
// with b = aT·I and K = aT·S + b. Beyond the overlap window the loss is
// constant on the plateau and mirrors back symmetrically toward Δ = T.
func (p Params) LossClosedForm(delta sim.Time) float64 {
	p.validate()
	T := p.Period.Seconds()
	aT := p.Alpha * T
	d := math.Mod(delta.Seconds(), T)
	if d < 0 {
		d += T
	}
	switch {
	case d <= aT:
		return -p.frontIntegral(d)
	case d < T-aT:
		return -p.frontIntegral(aT)
	default:
		// By the antisymmetry Shift(T−x) = −Shift(x), the integral
		// over [T−aT, d] cancels part of the plateau minimum:
		// Loss(d) = Loss(aT) + [front(aT) − front(T−d)].
		return -p.frontIntegral(aT) + (p.frontIntegral(aT) - p.frontIntegral(T-d))
	}
}

// frontIntegral computes ∫₀^d Shift(x) dx for d in [0, aT], closed form.
func (p Params) frontIntegral(d float64) float64 {
	aT := p.Alpha * p.Period.Seconds()
	S := p.Slope
	b := aT * p.Intercept
	K := aT*S + b
	f := func(u float64) float64 {
		return -u*u/2 + (K+b)*u - b*K*math.Log(u)
	}
	u0, u1 := b, b+S*d
	return (f(u1) - f(u0)) / (S * S)
}

// LossCurve samples Loss at n+1 evenly spaced points across one period,
// returning (delta seconds, loss) pairs for Figure 5(c).
func (p Params) LossCurve(n int) (deltas, losses []float64) {
	p.validate()
	if n < 2 {
		panic("analysis: LossCurve needs n >= 2")
	}
	T := p.Period.Seconds()
	for i := 0; i <= n; i++ {
		d := T * float64(i) / float64(n)
		deltas = append(deltas, d)
		losses = append(losses, p.Loss(sim.FromSeconds(d)))
	}
	return deltas, losses
}

// Descend iterates Δ_{i+1} = Δ_i + Shift(Δ_i) from delta0 for iters
// iterations — the gradient descent the paper proves MLTCP performs — and
// returns the trajectory including the starting point.
func (p Params) Descend(delta0 sim.Time, iters int) []sim.Time {
	p.validate()
	traj := make([]sim.Time, 0, iters+1)
	d := delta0
	traj = append(traj, d)
	for i := 0; i < iters; i++ {
		d += p.Shift(d)
		traj = append(traj, d)
	}
	return traj
}

// Interleaved reports whether a start-time difference leaves the two comm
// phases disjoint (within tolerance tol).
func (p Params) Interleaved(delta sim.Time, tol sim.Time) bool {
	T := p.Period.Seconds()
	aT := p.Alpha * T
	d := math.Mod(delta.Seconds(), T)
	if d < 0 {
		d += T
	}
	return d >= aT-tol.Seconds() && d <= T-aT+tol.Seconds()
}

// ConvergenceIteration returns the first index in a Descend trajectory
// where the configuration is interleaved (and stays interleaved through the
// end), or -1 if it never converges.
func (p Params) ConvergenceIteration(traj []sim.Time, tol sim.Time) int {
	for i := range traj {
		ok := true
		for _, d := range traj[i:] {
			if !p.Interleaved(d, tol) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// NoiseErrorStd returns §4's bound on MLTCP's steady-state approximation
// error: with zero-mean Gaussian noise of standard deviation sigma in the
// jobs' iteration times, the convergence error is normal with mean zero and
// standard deviation 2σ(1 + Intercept/Slope).
func NoiseErrorStd(sigma sim.Time, slope, intercept float64) sim.Time {
	if slope <= 0 {
		panic("analysis: slope must be positive")
	}
	return sim.FromSeconds(2 * sigma.Seconds() * (1 + intercept/slope))
}
