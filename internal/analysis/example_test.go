package analysis_test

import (
	"fmt"

	"mltcp/internal/analysis"
	"mltcp/internal/sim"
)

// Two identical jobs with a 50% communication fraction: the gradient
// descent of §4 walks the start-time difference from a small perturbation
// to the fully interleaved T/2.
func ExampleParams_Descend() {
	p := analysis.DefaultParams(0.5, 1800*sim.Millisecond)
	traj := p.Descend(20*sim.Millisecond, 40)
	final := traj[len(traj)-1]
	fmt.Printf("converged at iteration %d, final delta %.2fs (T/2 = %.2fs)\n",
		p.ConvergenceIteration(traj, sim.Millisecond), final.Seconds(), p.Period.Seconds()/2)
	// Output: converged at iteration 6, final delta 0.90s (T/2 = 0.90s)
}

// Equation 3 at a concrete operating point.
func ExampleParams_Shift() {
	p := analysis.DefaultParams(1.0/3, 1200*sim.Millisecond) // the GPT-3 shape
	fmt.Printf("Shift(100ms) = %.1fms\n", p.Shift(100*sim.Millisecond).Seconds()*1000)
	// Output: Shift(100ms) = 190.9ms
}

// The §4 noise bound with the paper's Slope and Intercept.
func ExampleNoiseErrorStd() {
	bound := analysis.NoiseErrorStd(50*sim.Millisecond, 1.75, 0.25)
	fmt.Printf("%.1fms\n", bound.Seconds()*1000)
	// Output: 114.3ms
}
