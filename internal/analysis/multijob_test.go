package analysis

import (
	"testing"
	"testing/quick"

	"mltcp/internal/sim"
)

func multi(n int, alpha float64) MultiParams {
	return MultiParams{Params: DefaultParams(alpha, 1800*sim.Millisecond), N: n}
}

func jitter(n int) []sim.Time {
	offs := make([]sim.Time, n)
	for i := range offs {
		offs[i] = sim.Time(i) * 15 * sim.Millisecond
	}
	return offs
}

func TestMultiThreeJobsConverge(t *testing.T) {
	t.Parallel()
	m := multi(3, 1.0/9)
	traj := m.DescendMulti(jitter(3), 120)
	it := m.ConvergenceIterationMulti(traj, sim.Millisecond)
	if it < 0 {
		t.Fatalf("3 jobs never interleaved; final offsets %v", traj[len(traj)-1])
	}
	if it > 80 {
		t.Errorf("converged at %d, want well within the run", it)
	}
}

func TestMultiFourJobsTightConverge(t *testing.T) {
	t.Parallel()
	// Four jobs at a = 0.2: aggregate duty 80%, tight but feasible.
	m := multi(4, 0.2)
	if !m.FeasibleMulti() {
		t.Fatal("expected feasible")
	}
	traj := m.DescendMulti(jitter(4), 400)
	final := traj[len(traj)-1]
	if !m.InterleavedMulti(final, 2*sim.Millisecond) {
		t.Errorf("not interleaved after 400 iterations: %v (min gap %.3fs)",
			final, m.MinPairGap(final))
	}
}

func TestMultiLossDecreasesAlongDescent(t *testing.T) {
	t.Parallel()
	// The defining property of gradient descent: the loss is
	// non-increasing along the trajectory.
	m := multi(3, 1.0/6)
	traj := m.DescendMulti(jitter(3), 60)
	prev := m.TotalLoss(traj[0])
	for i, offs := range traj[1:] {
		l := m.TotalLoss(offs)
		if l > prev+1e-6 {
			t.Fatalf("loss increased at step %d: %v -> %v", i+1, prev, l)
		}
		prev = l
	}
}

func TestMultiInfeasibleNeverInterleaves(t *testing.T) {
	t.Parallel()
	// Three jobs at a = 0.4: aggregate duty 120% > 1, no interleaved
	// schedule exists (the §4 compatibility assumption is violated).
	m := multi(3, 0.4)
	if m.FeasibleMulti() {
		t.Fatal("expected infeasible")
	}
	traj := m.DescendMulti(jitter(3), 200)
	if m.InterleavedMulti(traj[len(traj)-1], sim.Millisecond) {
		t.Error("reported interleaved for an infeasible workload")
	}
}

func TestMultiConvergedStateIsStationary(t *testing.T) {
	t.Parallel()
	m := multi(3, 1.0/9)
	// A hand-built interleaved schedule: offsets 0, 600ms, 1200ms
	// (gaps 600ms >> aT = 200ms).
	offs := []sim.Time{0, 600 * sim.Millisecond, 1200 * sim.Millisecond}
	traj := m.DescendMulti(offs, 10)
	final := traj[len(traj)-1]
	for i := range offs {
		if final[i] != offs[i] {
			t.Errorf("interleaved state moved: job %d %v -> %v", i, offs[i], final[i])
		}
	}
	if got := m.TotalLoss(offs); got > -0.01 {
		t.Errorf("interleaved loss %v should be deep in the minimum", got)
	}
}

// Property: descent from random feasible jitters always lands interleaved
// for 3 jobs at low duty, and the minimum pairwise gap ends at least aT.
func TestMultiDescentProperty(t *testing.T) {
	t.Parallel()
	m := multi(3, 1.0/9)
	aT := m.Alpha * m.Period.Seconds()
	prop := func(a, b uint8) bool {
		offs := []sim.Time{
			0,
			sim.Time(a%100) * sim.Millisecond,
			sim.Time(b%100+1) * sim.Millisecond * 2,
		}
		traj := m.DescendMulti(offs, 300)
		final := traj[len(traj)-1]
		if !m.InterleavedMulti(final, 2*sim.Millisecond) {
			// Symmetric starting points (exact ties) legitimately
			// stall on the unstable maximum; only accept stalls
			// when two offsets coincide exactly.
			return offs[1] == offs[2] || offs[1] == 0 || offs[2] == 0
		}
		return m.MinPairGap(final) >= aT-0.003
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMultiValidation(t *testing.T) {
	t.Parallel()
	for name, fn := range map[string]func(){
		"n-too-small":  func() { multi(1, 0.2).TotalLoss([]sim.Time{0}) },
		"offset-count": func() { multi(3, 0.2).TotalLoss([]sim.Time{0}) },
		"descend-count": func() {
			multi(3, 0.2).DescendMulti([]sim.Time{0}, 5)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
