package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"mltcp/internal/sim"
)

func params(alpha float64) Params {
	return DefaultParams(alpha, 1800*sim.Millisecond)
}

func TestShiftZeroAtBoundaries(t *testing.T) {
	t.Parallel()
	p := params(0.5)
	if got := p.Shift(0); got != 0 {
		t.Errorf("Shift(0) = %v, want 0", got)
	}
	aT := sim.FromSeconds(0.5 * 1.8)
	if got := p.Shift(aT); got != 0 {
		t.Errorf("Shift(aT) = %v, want 0", got)
	}
	if got := p.Shift(p.Period); got != 0 {
		t.Errorf("Shift(T) = %v, want 0 (wraps to 0)", got)
	}
}

func TestShiftPositiveInOverlapWindow(t *testing.T) {
	t.Parallel()
	p := params(1.0 / 6)
	aT := p.Alpha * p.Period.Seconds()
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		d := sim.FromSeconds(aT * frac)
		if got := p.Shift(d); got <= 0 {
			t.Errorf("Shift(%v) = %v, want > 0", d, got)
		}
	}
}

func TestShiftMatchesEquationThree(t *testing.T) {
	t.Parallel()
	// Hand-evaluate Eq. 3 at Δ = 0.15s with a=1/6, T=1.8s, S=1.75, I=0.25.
	p := params(1.0 / 6)
	aT := 0.3
	delta := 0.15
	want := 1.75 * delta * (aT - delta) / (aT*0.25 + delta*1.75)
	got := p.Shift(sim.FromSeconds(delta)).Seconds()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Shift(0.15s) = %v, want %v", got, want)
	}
}

func TestShiftAntisymmetricNearPeriod(t *testing.T) {
	t.Parallel()
	p := params(0.5)
	d := 100 * sim.Millisecond
	fwd := p.Shift(d)
	back := p.Shift(p.Period - d)
	if fwd != -back {
		t.Errorf("Shift(T-Δ) = %v, want -Shift(Δ) = %v", back, -fwd)
	}
}

func TestShiftZeroOnInterleavedPlateau(t *testing.T) {
	t.Parallel()
	p := params(1.0 / 6) // aT = 0.3s, plateau [0.3, 1.5]
	for _, d := range []sim.Time{400 * sim.Millisecond, 900 * sim.Millisecond, 1400 * sim.Millisecond} {
		if got := p.Shift(d); got != 0 {
			t.Errorf("Shift(%v) = %v, want 0 on plateau", d, got)
		}
	}
}

func TestLossShape(t *testing.T) {
	t.Parallel()
	// Figure 5(c): a = 1/2 -> loss decreases to a minimum at T/2, rises
	// back to ~0 at T.
	p := params(0.5)
	l0 := p.Loss(0)
	lq := p.Loss(p.Period / 4)
	lh := p.Loss(p.Period / 2)
	l3q := p.Loss(3 * p.Period / 4)
	lT := p.Loss(p.Period)
	if l0 != 0 {
		t.Errorf("Loss(0) = %v, want 0", l0)
	}
	if !(lh < lq && lq < l0) {
		t.Errorf("loss not decreasing to T/2: L(0)=%v L(T/4)=%v L(T/2)=%v", l0, lq, lh)
	}
	if !(lh < l3q && l3q < lT+1e-12) {
		t.Errorf("loss not increasing after T/2: L(T/2)=%v L(3T/4)=%v L(T)=%v", lh, l3q, lT)
	}
	if math.Abs(lT) > 1e-6 {
		t.Errorf("Loss(T) = %v, want ~0 by symmetry", lT)
	}
}

func TestLossMinimumIsGlobal(t *testing.T) {
	t.Parallel()
	// §4: "the loss function obtained by MLTCP is guaranteed to have
	// only global optima". Check the minimum set is exactly the
	// interleaved plateau for a < 1/2.
	p := params(1.0 / 6)
	_, losses := p.LossCurve(180)
	min := losses[0]
	for _, l := range losses {
		if l < min {
			min = l
		}
	}
	for i, l := range losses {
		d := sim.FromSeconds(1.8 * float64(i) / 180)
		onPlateau := p.Interleaved(d, sim.Millisecond)
		atMin := math.Abs(l-min) < 1e-6 // Simpson noise is ~1e-8 on the plateau
		if onPlateau != atMin {
			t.Errorf("delta %v: interleaved=%v but at-minimum=%v (loss %v, min %v)", d, onPlateau, atMin, l, min)
		}
	}
}

// Property: the loss's numerical derivative equals the negative shift
// (Equation 4 is the negative integral of Equation 3).
func TestLossDerivativeIsNegativeShift(t *testing.T) {
	t.Parallel()
	p := params(0.4)
	prop := func(frac8 uint8) bool {
		frac := float64(frac8)/255*0.9 + 0.02 // within (0, 0.92)
		d := sim.FromSeconds(p.Period.Seconds() * frac)
		h := sim.Millisecond
		dLoss := (p.Loss(d+h) - p.Loss(d-h)) / (2 * h.Seconds())
		shift := p.Shift(d).Seconds()
		return math.Abs(dLoss+shift) < 5e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDescendConverges(t *testing.T) {
	t.Parallel()
	// §2: MLTCP converges within ~20 iterations in the testbed; the
	// idealized gradient descent should interleave comparably fast.
	p := params(1.0 / 6)
	traj := p.Descend(20*sim.Millisecond, 60)
	it := p.ConvergenceIteration(traj, sim.Millisecond)
	if it < 0 {
		t.Fatalf("never converged: final delta %v", traj[len(traj)-1])
	}
	if it > 40 {
		t.Errorf("converged at iteration %d, want <= 40", it)
	}
	// Once interleaved, the configuration must be stable.
	final := traj[len(traj)-1]
	if !p.Interleaved(final, sim.Millisecond) {
		t.Errorf("final delta %v not interleaved", final)
	}
}

func TestDescendStationaryAtZero(t *testing.T) {
	t.Parallel()
	// Δ=0 is the unstable equilibrium: pure descent cannot leave it
	// (in practice noise breaks the tie; see the fluid tests).
	p := params(0.5)
	traj := p.Descend(0, 10)
	for _, d := range traj {
		if d != 0 {
			t.Fatalf("descent moved from the symmetric point: %v", d)
		}
	}
}

func TestDescendFromAboveShrinksBack(t *testing.T) {
	t.Parallel()
	// Starting with Δ just below T (overlap from behind), the shift is
	// negative and the trajectory must fall back onto the plateau.
	p := params(1.0 / 6)
	start := p.Period - 100*sim.Millisecond
	traj := p.Descend(start, 60)
	final := traj[len(traj)-1]
	if !p.Interleaved(final, sim.Millisecond) {
		t.Errorf("final delta %v not interleaved (started at %v)", final, start)
	}
	if final >= start {
		t.Errorf("delta should shrink from %v, got %v", start, final)
	}
}

func TestNoiseErrorStd(t *testing.T) {
	t.Parallel()
	// 2σ(1 + I/S) with the paper's constants: 2σ(1 + 1/7).
	got := NoiseErrorStd(70*sim.Millisecond, 1.75, 0.25)
	want := sim.FromSeconds(2 * 0.070 * (1 + 0.25/1.75))
	if got != want {
		t.Errorf("NoiseErrorStd = %v, want %v", got, want)
	}
}

func TestParamsValidation(t *testing.T) {
	t.Parallel()
	for name, p := range map[string]Params{
		"zero-slope": {Slope: 0, Intercept: 1, Alpha: 0.5, Period: sim.Second},
		"bad-alpha":  {Slope: 1, Intercept: 1, Alpha: 0, Period: sim.Second},
		"bad-period": {Slope: 1, Intercept: 1, Alpha: 0.5, Period: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			p.Shift(0)
		}()
	}
}

// Property: the closed-form loss agrees with the Simpson-integrated loss
// across the whole period and a range of shapes.
func TestLossClosedFormMatchesNumeric(t *testing.T) {
	t.Parallel()
	prop := func(alpha8, frac8 uint8) bool {
		alpha := 0.05 + float64(alpha8)/255*0.45 // (0.05, 0.5]
		p := DefaultParams(alpha, 1800*sim.Millisecond)
		d := sim.FromSeconds(p.Period.Seconds() * float64(frac8) / 255)
		num := p.Loss(d)
		closed := p.LossClosedForm(d)
		return math.Abs(num-closed) < 1e-6+1e-4*math.Abs(closed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLossClosedFormBoundaryValues(t *testing.T) {
	t.Parallel()
	p := params(0.5)
	if got := p.LossClosedForm(0); got != 0 {
		t.Errorf("closed Loss(0) = %v", got)
	}
	if got := p.LossClosedForm(p.Period); math.Abs(got) > 1e-9 {
		t.Errorf("closed Loss(T) = %v, want 0 by symmetry", got)
	}
	// The plateau value equals the minimum of the sampled curve.
	p2 := params(1.0 / 6)
	plateau := p2.LossClosedForm(900 * sim.Millisecond)
	_, losses := p2.LossCurve(90)
	min := losses[0]
	for _, l := range losses {
		if l < min {
			min = l
		}
	}
	if math.Abs(plateau-min) > 1e-6 {
		t.Errorf("plateau %v != sampled min %v", plateau, min)
	}
}

func TestLossZeroDeltaExact(t *testing.T) {
	t.Parallel()
	// Loss(0) must be exactly 0 via the integer-nanosecond test, not a
	// float comparison on the converted value: the zero branch is an
	// exact integer fact about Δ.
	for _, alpha := range []float64{1.0 / 6, 0.5, 0.9} {
		p := params(alpha)
		if got := p.Loss(0); got != 0 {
			t.Errorf("alpha=%v: Loss(0) = %v, want exactly 0", alpha, got)
		}
	}
	// The smallest representable positive Δ takes the integration path
	// and stays finite — the zero guard is a special case, not a crutch.
	p := params(0.5)
	got := p.Loss(1)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("Loss(1ns) = %v, want finite", got)
	}
}

func TestLossContinuousNearZero(t *testing.T) {
	t.Parallel()
	// Loss is continuous at Δ→0: the dedicated zero branch must agree
	// with the limit of the integral branch.
	p := params(0.5)
	if got := p.Loss(sim.FromSeconds(1e-9)); math.Abs(got) > 1e-6 {
		t.Errorf("Loss(1ns) = %v, want ≈ Loss(0) = 0", got)
	}
}
