module mltcp

go 1.22
