# Developer entry points. Everything here is plain `go` tooling; the
# only non-standard piece is cmd/mltcp-lint, the repo's own analyzer
# suite (see docs/EXTENDING.md §7).

GO ?= go

.PHONY: build test race lint vet-lint bench bench-baseline profile clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-shot static analysis: the four mltcp analyzers over the module.
# Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/mltcp-lint ./...

# The same suite driven through `go vet`, sharing vet's per-package
# caching — faster on incremental runs, and exactly what CI executes.
vet-lint: bin/mltcp-lint
	$(GO) vet -vettool=bin/mltcp-lint ./...

bin/mltcp-lint: $(wildcard internal/lint/*.go) $(wildcard cmd/mltcp-lint/*.go) go.mod
	$(GO) build -o $@ ./cmd/mltcp-lint

# Run the pinned benchmark suite and gate against the checked-in
# baseline (fail past 20% regression, warn past 10%).
bench:
	$(GO) run ./cmd/mltcp-bench -out BENCH.json
	$(GO) run ./cmd/mltcp-bench compare -gate 0.20 -warn 0.10 bench/baseline.json BENCH.json

# Regenerate the baseline after a deliberate performance change.
bench-baseline:
	$(GO) run ./cmd/mltcp-bench -out bench/baseline.json

# Profile the quick suite: CPU + heap profiles under profiles/, ready
# for `go tool pprof profiles/cpu.pprof`. Profiling perturbs wall time
# but never simulation state (see internal/obs/pprof.go), so the run's
# traces match an unprofiled run's. See docs/EXTENDING.md §10.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/mltcp-bench -quick -out profiles/BENCH.json \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/heap.pprof
	@echo "profiles written: go tool pprof profiles/cpu.pprof"

clean:
	rm -rf bin BENCH.json profiles
