# Developer entry points. Everything here is plain `go` tooling; the
# only non-standard piece is cmd/mltcp-lint, the repo's own analyzer
# suite (see docs/EXTENDING.md §7).

GO ?= go

.PHONY: build test race lint vet-lint clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-shot static analysis: the four mltcp analyzers over the module.
# Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/mltcp-lint ./...

# The same suite driven through `go vet`, sharing vet's per-package
# caching — faster on incremental runs, and exactly what CI executes.
vet-lint: bin/mltcp-lint
	$(GO) vet -vettool=bin/mltcp-lint ./...

bin/mltcp-lint: $(wildcard internal/lint/*.go) $(wildcard cmd/mltcp-lint/*.go) go.mod
	$(GO) build -o $@ ./cmd/mltcp-lint

clean:
	rm -rf bin
