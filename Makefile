# Developer entry points. Everything here is plain `go` tooling; the
# only non-standard piece is cmd/mltcp-lint, the repo's own analyzer
# suite (see docs/EXTENDING.md §7 and §12).

GO ?= go

.PHONY: build test race lint vet-lint diff bench bench-baseline corpus train profile clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-shot static analysis: the seven mltcp analyzers over the module,
# facts accumulated in memory across the dependency graph. Exits
# non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/mltcp-lint ./...

# The same suite driven through `go vet`, sharing vet's per-package
# caching (fact files travel through the vetx channel) — faster on
# incremental runs, and exactly what CI executes.
vet-lint: bin/mltcp-lint
	$(GO) vet -vettool=bin/mltcp-lint ./...

bin/mltcp-lint: $(wildcard internal/lint/*.go) $(wildcard cmd/mltcp-lint/*.go) go.mod
	$(GO) build -o $@ ./cmd/mltcp-lint

# Structurally diff two JSONL traces (docs/EXTENDING.md §13): exits 0
# when byte-identical, 1 when only metadata (revision) differs, 2 on
# divergence — with the first divergent event decoded and contextualized.
#   make diff A=before.jsonl B=after.jsonl
diff:
	$(GO) run ./cmd/mltcp-diff $(A) $(B)

# Run the pinned benchmark suite and gate against the checked-in
# baseline (fail past 20% regression, warn past 10%).
bench:
	$(GO) run ./cmd/mltcp-bench -out BENCH.json
	$(GO) run ./cmd/mltcp-bench compare -gate 0.20 -warn 0.10 bench/baseline.json BENCH.json

# Regenerate the baseline after a deliberate performance change.
bench-baseline:
	$(GO) run ./cmd/mltcp-bench -out bench/baseline.json

# Learned-backend pipeline (docs/EXTENDING.md §11). `make corpus` fans
# the training grid over the harness; GRID=quick generates the CI-sized
# corpus in seconds, GRID=full the production corpus in minutes. `make
# train` refits the checked-in default model from that corpus and fails
# if the tracked prediction error exceeds the 10% acceptance gate.
GRID ?= full
corpus:
	$(GO) run ./cmd/mltcp-corpus -grid $(GRID) -seed 1 -out corpus-$(GRID).jsonl

train:
	$(GO) run ./cmd/mltcp-train -corpus corpus-$(GRID).jsonl -seed 1 \
		-out internal/learn/models/default.json -maxerr 0.10

# Profile the quick suite: CPU + heap profiles under profiles/, ready
# for `go tool pprof profiles/cpu.pprof`. Profiling perturbs wall time
# but never simulation state (see internal/obs/pprof.go), so the run's
# traces match an unprofiled run's. See docs/EXTENDING.md §10.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/mltcp-bench -quick -out profiles/BENCH.json \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/heap.pprof
	@echo "profiles written: go tool pprof profiles/cpu.pprof"

clean:
	rm -rf bin BENCH.json profiles
